// E-pedigree tracking (the paper's Example 5): pharmaceutical-style
// regulations require preserving all raw tracking data, which rules out
// eager cleansing — deferred cleansing reconstructs a case's chain of
// custody at query time, compensating missed case reads with the pallet's
// reliable reads.
//
// Usage: epedigree [pallets] [dirty_fraction]
#include <cstdio>
#include <cstdlib>

#include "plan/planner.h"
#include "rewrite/rewriter.h"
#include "rfidgen/anomaly.h"
#include "rfidgen/workload.h"

using namespace rfid;

int main(int argc, char** argv) {
  rfidgen::GeneratorOptions gen;
  gen.num_pallets = argc > 1 ? atoll(argv[1]) : 10;
  gen.min_cases_per_pallet = 3;
  gen.max_cases_per_pallet = 6;
  rfidgen::AnomalyOptions anomalies;
  anomalies.dirty_fraction = argc > 2 ? atof(argv[2]) : 0.20;
  // Only missed reads for a crisp pedigree demo.
  anomalies.duplicates = anomalies.reader = anomalies.replacing =
      anomalies.cycles = false;

  Database db;
  auto gstats = rfidgen::Generate(gen, &db);
  if (!gstats.ok()) {
    fprintf(stderr, "%s\n", gstats.status().ToString().c_str());
    return 1;
  }
  auto astats = rfidgen::InjectAnomalies(anomalies, &db);
  if (!astats.ok()) {
    fprintf(stderr, "%s\n", astats.status().ToString().c_str());
    return 1;
  }
  printf("raw data preserved: %lld case reads; %lld reads were missed at "
         "source\n\n",
         static_cast<long long>(db.GetTable("caseR")->num_rows()),
         static_cast<long long>(astats->missing));

  // The full five-rule policy; the missing rule's two sub-rules compensate
  // missed case reads from pallet reads.
  CleansingRuleEngine rules(&db);
  for (const std::string& def : workload::StandardRuleDefinitions(5)) {
    if (Status st = rules.DefineRule(def); !st.ok()) {
      fprintf(stderr, "rule: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Pick a case that actually lost a read: compare per-epc counts.
  auto dirty_counts = ExecuteSql(
      db, "SELECT epc, count(*) FROM caseR GROUP BY epc");
  if (!dirty_counts.ok()) return 1;

  QueryRewriter rewriter(&db, &rules);
  std::string pedigree_template =
      "SELECT rtime, biz_loc, reader FROM caseR WHERE epc = '%s' "
      "AND rtime >= TIMESTAMP 0";

  // Find a case whose cleansed pedigree is longer than its raw one.
  std::string chosen;
  for (const Row& r : dirty_counts->rows) {
    const std::string& epc = r[0].string_value();
    char buf[256];
    snprintf(buf, sizeof(buf), pedigree_template.c_str(), epc.c_str());
    auto info = rewriter.Rewrite(buf);
    if (!info.ok()) continue;
    auto clean = ExecuteSql(db, info->sql);
    if (!clean.ok()) continue;
    if (static_cast<int64_t>(clean->rows.size()) > r[1].int64_value()) {
      chosen = epc;
      printf("case %s: raw pedigree has %lld reads, cleansed pedigree has "
             "%zu (missed reads compensated from pallet data)\n\n",
             epc.c_str(), static_cast<long long>(r[1].int64_value()),
             clean->rows.size());
      printf("%-22s %-18s %s\n", "time", "location", "reader");
      for (const Row& step : clean->rows) {
        printf("%-22s %-18s %s\n", step[0].ToString().c_str(),
               step[1].ToString().c_str(), step[2].ToString().c_str());
      }
      break;
    }
  }
  if (chosen.empty()) {
    printf("no case needed compensation at this scale; re-run with a higher "
           "dirty fraction\n");
  }
  return 0;
}
