// Quickstart: the smallest end-to-end use of the deferred cleansing
// library — load a few RFID reads, declare a cleansing rule in extended
// SQL-TS, and run a query three ways: raw (dirty), rewritten by the
// engine (cleansed), and with the rewrite internals printed.
#include <cstdio>

#include "cleansing/rule.h"
#include "common/time_util.h"
#include "plan/planner.h"
#include "rewrite/rewriter.h"
#include "sql/render.h"

using namespace rfid;

namespace {

void PrintResult(const char* title, const QueryResult& res) {
  printf("%s\n", title);
  for (size_t i = 0; i < res.desc.num_fields(); ++i) {
    printf("%-28s", res.desc.field(i).name.c_str());
  }
  printf("\n");
  for (const Row& row : res.rows) {
    for (const Value& v : row) printf("%-28s", v.ToString().c_str());
    printf("\n");
  }
  printf("(%zu rows)\n\n", res.rows.size());
}

}  // namespace

int main() {
  // 1. A tiny reads table: tag e1 is read at the dock, then twice more at
  //    the dock within a minute (duplicate reads that survived the edge),
  //    then on the shop floor.
  Database db;
  Schema reads;
  reads.AddColumn("epc", DataType::kString);
  reads.AddColumn("rtime", DataType::kTimestamp);
  reads.AddColumn("reader", DataType::kString);
  reads.AddColumn("biz_loc", DataType::kString);
  Table* case_r = db.CreateTable("caseR", reads).value();
  auto add = [&](const char* epc, int64_t minutes, const char* rd,
                 const char* loc) {
    Status st = case_r->Append({Value::String(epc),
                                Value::Timestamp(Minutes(minutes)),
                                Value::String(rd), Value::String(loc)});
    if (!st.ok()) {
      fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
      exit(1);
    }
  };
  add("e1", 0, "r1", "dock");
  add("e1", 1, "r2", "dock");   // duplicate
  add("e1", 2, "r1", "dock");   // duplicate
  add("e1", 90, "r3", "floor");
  add("e2", 10, "r1", "dock");
  add("e2", 95, "r2", "floor");
  case_r->ComputeStats();

  // 2. Declare the duplicate rule (Section 4.3, Example 1) in SQL-TS.
  CleansingRuleEngine rules(&db);
  Status st = rules.DefineRule(
      "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime "
      "AS (A, B) "
      "WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 MINUTES "
      "ACTION DELETE B");
  if (!st.ok()) {
    fprintf(stderr, "rule rejected: %s\n", st.ToString().c_str());
    return 1;
  }
  printf("rule 'duplicate' compiled to SQL/OLAP; template stored in __rules\n\n");

  // 3. An analytic query, unaware of anomalies.
  std::string query =
      "SELECT epc, count(*) AS reads FROM caseR "
      "WHERE rtime <= TIMESTAMP '1970-01-01 02:00:00' GROUP BY epc";

  auto dirty = ExecuteSql(db, query);
  PrintResult("-- raw (dirty) answer --", dirty.value());

  // 4. Rewrite and run: the engine picks the cheapest correct strategy.
  QueryRewriter rewriter(&db, &rules);
  auto info = rewriter.Rewrite(query);
  if (!info.ok()) {
    fprintf(stderr, "rewrite failed: %s\n", info.status().ToString().c_str());
    return 1;
  }
  printf("chosen strategy : %s\n", RewriteStrategyName(info->chosen));
  if (info->expanded_condition != nullptr) {
    printf("expanded cond ec: %s\n",
           RenderExpr(info->expanded_condition).c_str());
  }
  printf("rewritten SQL   : %s\n\n", info->sql.c_str());

  auto clean = ExecuteSql(db, info->sql);
  PrintResult("-- cleansed answer --", clean.value());

  printf("candidates considered:\n");
  for (const RewriteCandidate& c : info->candidates) {
    printf("  %-32s cost %10.0f  (%s)\n", c.label.c_str(), c.estimated_cost,
           RewriteStrategyName(c.strategy));
  }
  return 0;
}
