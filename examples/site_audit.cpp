// Site analysis (the paper's query q2): reader utilization and business
// steps per manufacturer at one distribution center. Demonstrates the
// join-back rewrite exploiting a dimension predicate (l.site) that
// correlates with EPC sequences — the effect behind Figure 7(d).
//
// Usage: site_audit [pallets] [dirty_fraction] [site]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "plan/planner.h"
#include "rewrite/rewriter.h"
#include "rfidgen/anomaly.h"
#include "rfidgen/workload.h"

using namespace rfid;

int main(int argc, char** argv) {
  rfidgen::GeneratorOptions gen;
  gen.num_pallets = argc > 1 ? atoll(argv[1]) : 30;
  rfidgen::AnomalyOptions anomalies;
  anomalies.dirty_fraction = argc > 2 ? atof(argv[2]) : 0.10;
  std::string site = argc > 3 ? argv[3] : "dc2";

  Database db;
  auto gstats = rfidgen::Generate(gen, &db);
  if (!gstats.ok()) {
    fprintf(stderr, "%s\n", gstats.status().ToString().c_str());
    return 1;
  }
  if (auto a = rfidgen::InjectAnomalies(anomalies, &db); !a.ok()) {
    fprintf(stderr, "%s\n", a.status().ToString().c_str());
    return 1;
  }

  CleansingRuleEngine rules(&db);
  for (const std::string& def : workload::StandardRuleDefinitions(3)) {
    if (Status st = rules.DefineRule(def); !st.ok()) {
      fprintf(stderr, "rule: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  std::string q2 = workload::Q2(workload::T2ForSelectivity(db, 0.30), site);
  printf("auditing site %s over the most recent 30%% of reads\n\n", site.c_str());

  QueryRewriter rewriter(&db, &rules);
  auto info = rewriter.Rewrite(q2);
  if (!info.ok()) {
    fprintf(stderr, "rewrite: %s\n", info.status().ToString().c_str());
    return 1;
  }
  printf("strategy: %s (est. cost %.0f). Candidates:\n",
         RewriteStrategyName(info->chosen), info->estimated_cost);
  for (const RewriteCandidate& c : info->candidates) {
    printf("  %-36s cost %12.0f\n", c.label.c_str(), c.estimated_cost);
  }

  auto start = std::chrono::steady_clock::now();
  auto res = ExecuteSql(db, info->sql);
  auto end = std::chrono::steady_clock::now();
  if (!res.ok()) {
    fprintf(stderr, "query: %s\n", res.status().ToString().c_str());
    return 1;
  }
  printf("\ncleansed site audit (%zu manufacturers, %.1f ms):\n",
         res->rows.size(),
         std::chrono::duration<double, std::milli>(end - start).count());
  printf("%-12s %-14s %s\n", "manufacturer", "step types", "readers used");
  size_t shown = 0;
  for (const Row& r : res->rows) {
    printf("%-12s %-14s %s\n", r[0].ToString().c_str(), r[1].ToString().c_str(),
           r[2].ToString().c_str());
    if (++shown == 12) break;
  }
  if (res->rows.size() > shown) {
    printf("... (%zu more)\n", res->rows.size() - shown);
  }
  return 0;
}
