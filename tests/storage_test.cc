// Unit tests for schema, table, index, catalog and statistics.
#include <gtest/gtest.h>

#include "common/time_util.h"
#include "storage/catalog.h"

namespace rfid {
namespace {

Schema ReadsSchema() {
  Schema s;
  s.AddColumn("epc", DataType::kString);
  s.AddColumn("rtime", DataType::kTimestamp);
  s.AddColumn("reader", DataType::kString);
  s.AddColumn("biz_loc", DataType::kString);
  s.AddColumn("biz_step", DataType::kInt64);
  return s;
}

Row MakeRead(const std::string& epc, int64_t rtime, const std::string& reader,
             const std::string& loc, int64_t step) {
  return {Value::String(epc), Value::Timestamp(rtime), Value::String(reader),
          Value::String(loc), Value::Int64(step)};
}

TEST(SchemaTest, LookupIsCaseInsensitive) {
  Schema s = ReadsSchema();
  EXPECT_EQ(s.FindColumn("EPC"), 0);
  EXPECT_EQ(s.FindColumn("Rtime"), 1);
  EXPECT_EQ(s.FindColumn("missing"), -1);
  auto r = s.ResolveColumn("biz_loc");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 3u);
  EXPECT_FALSE(s.ResolveColumn("nope").ok());
}

TEST(SchemaTest, ToStringListsColumns) {
  Schema s;
  s.AddColumn("a", DataType::kInt64);
  s.AddColumn("b", DataType::kString);
  EXPECT_EQ(s.ToString(), "(a INT64, b STRING)");
}

TEST(TableTest, AppendChecksArityAndTypes) {
  Table t("reads", ReadsSchema());
  EXPECT_TRUE(t.Append(MakeRead("e1", 100, "r1", "l1", 1)).ok());
  EXPECT_FALSE(t.Append({Value::Int64(1)}).ok());  // wrong arity
  Row bad = MakeRead("e1", 100, "r1", "l1", 1);
  bad[0] = Value::Int64(7);  // wrong type for epc
  EXPECT_FALSE(t.Append(bad).ok());
  // NULLs are allowed in any column.
  Row with_null = MakeRead("e1", 100, "r1", "l1", 1);
  with_null[2] = Value::Null();
  EXPECT_TRUE(t.Append(with_null).ok());
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(IndexTest, RangeScanInclusiveExclusive) {
  Table t("reads", ReadsSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Append(MakeRead("e", Minutes(i), "r", "l", i)).ok());
  }
  ASSERT_TRUE(t.BuildIndex("rtime").ok());
  const SortedIndex* idx = t.GetIndex("rtime");
  ASSERT_NE(idx, nullptr);

  auto ids = idx->RangeScan(Bound{Value::Timestamp(Minutes(3)), true},
                            Bound{Value::Timestamp(Minutes(6)), true});
  EXPECT_EQ(ids.size(), 4u);  // minutes 3,4,5,6

  ids = idx->RangeScan(Bound{Value::Timestamp(Minutes(3)), false},
                       Bound{Value::Timestamp(Minutes(6)), false});
  EXPECT_EQ(ids.size(), 2u);  // minutes 4,5

  ids = idx->RangeScan(std::nullopt, Bound{Value::Timestamp(Minutes(2)), true});
  EXPECT_EQ(ids.size(), 3u);  // 0,1,2

  ids = idx->RangeScan(Bound{Value::Timestamp(Minutes(8)), true}, std::nullopt);
  EXPECT_EQ(ids.size(), 2u);  // 8,9
}

TEST(IndexTest, ScanReturnsRowsInValueOrder) {
  Table t("reads", ReadsSchema());
  // Insert out of time order.
  ASSERT_TRUE(t.Append(MakeRead("e", Minutes(5), "r", "l", 0)).ok());
  ASSERT_TRUE(t.Append(MakeRead("e", Minutes(1), "r", "l", 1)).ok());
  ASSERT_TRUE(t.Append(MakeRead("e", Minutes(3), "r", "l", 2)).ok());
  ASSERT_TRUE(t.BuildIndex("rtime").ok());
  auto ids = t.GetIndex("rtime")->RangeScan(std::nullopt, std::nullopt);
  ASSERT_EQ(ids.size(), 3u);
  int64_t prev = -1;
  for (uint32_t id : ids) {
    int64_t v = t.row(id)[1].timestamp_value();
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(IndexTest, NullValuesExcluded) {
  Table t("reads", ReadsSchema());
  Row r = MakeRead("e", Minutes(1), "r", "l", 0);
  r[1] = Value::Null();
  ASSERT_TRUE(t.Append(r).ok());
  ASSERT_TRUE(t.Append(MakeRead("e", Minutes(2), "r", "l", 1)).ok());
  ASSERT_TRUE(t.BuildIndex("rtime").ok());
  auto ids = t.GetIndex("rtime")->RangeScan(std::nullopt, std::nullopt);
  EXPECT_EQ(ids.size(), 1u);
}

TEST(StatsTest, MinMaxNdvNulls) {
  Table t("reads", ReadsSchema());
  ASSERT_TRUE(t.Append(MakeRead("e1", Minutes(1), "r1", "l1", 1)).ok());
  ASSERT_TRUE(t.Append(MakeRead("e2", Minutes(9), "r1", "l2", 2)).ok());
  Row with_null = MakeRead("e1", Minutes(5), "r2", "l1", 3);
  with_null[2] = Value::Null();
  ASSERT_TRUE(t.Append(with_null).ok());
  t.ComputeStats();

  const ColumnStats& epc = t.stats(0);
  EXPECT_EQ(epc.ndv, 2u);
  EXPECT_EQ(epc.null_count, 0u);
  EXPECT_EQ(epc.min.string_value(), "e1");
  EXPECT_EQ(epc.max.string_value(), "e2");

  const ColumnStats& rtime = t.stats(1);
  EXPECT_EQ(rtime.min.timestamp_value(), Minutes(1));
  EXPECT_EQ(rtime.max.timestamp_value(), Minutes(9));

  const ColumnStats& reader = t.stats(2);
  EXPECT_EQ(reader.null_count, 1u);
  EXPECT_EQ(reader.ndv, 1u);  // "r2" was overwritten with NULL; only "r1" remains
}

TEST(StalenessTest, AppendMarksIndexAndStatsStale) {
  Table t("reads", ReadsSchema());
  ASSERT_TRUE(t.Append(MakeRead("e1", Minutes(1), "r", "l", 1)).ok());
  ASSERT_TRUE(t.BuildIndex("rtime").ok());
  t.ComputeStats();
  EXPECT_NE(t.GetIndex("rtime"), nullptr);
  EXPECT_TRUE(t.has_stats());
  EXPECT_FALSE(t.structures_stale());

  ASSERT_TRUE(t.Append(MakeRead("e2", Minutes(2), "r", "l", 2)).ok());
  // Stale structures must refuse to serve: the index would miss the new
  // row and the stats would under-count it.
  EXPECT_EQ(t.GetIndex("rtime"), nullptr);
  EXPECT_FALSE(t.has_stats());
  EXPECT_TRUE(t.structures_stale());
  EXPECT_TRUE(t.CurrentStatsView().stats == nullptr);

  ASSERT_TRUE(t.BuildIndex("rtime").ok());
  t.ComputeStats();
  EXPECT_NE(t.GetIndex("rtime"), nullptr);
  EXPECT_TRUE(t.has_stats());
  EXPECT_FALSE(t.structures_stale());
}

TEST(StalenessTest, MutableRowAndReplaceRowsMarkStale) {
  Table t("reads", ReadsSchema());
  ASSERT_TRUE(t.Append(MakeRead("e1", Minutes(1), "r", "l", 1)).ok());
  ASSERT_TRUE(t.BuildIndex("rtime").ok());
  t.ComputeStats();

  t.mutable_row(0)[1] = Value::Timestamp(Minutes(9));
  EXPECT_EQ(t.GetIndex("rtime"), nullptr);
  EXPECT_FALSE(t.has_stats());

  ASSERT_TRUE(t.BuildIndex("rtime").ok());
  t.ComputeStats();
  ASSERT_TRUE(t.ReplaceRows({MakeRead("e2", Minutes(3), "r", "l", 2)}).ok());
  EXPECT_EQ(t.GetIndex("rtime"), nullptr);
  EXPECT_FALSE(t.has_stats());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(StalenessTest, IngestBatchKeepsStructuresFresh) {
  Table t("reads", ReadsSchema());
  ASSERT_TRUE(t.Append(MakeRead("e1", Minutes(1), "r", "l", 1)).ok());
  ASSERT_TRUE(t.BuildIndex("rtime").ok());
  t.ComputeStats();
  uint64_t version = t.stats_version();

  auto first = t.IngestBatch({MakeRead("e2", Minutes(5), "r", "l", 2),
                              MakeRead("e3", Minutes(3), "r", "l", 3)});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1u);
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.visible_rows(), 3u);
  // The batch maintained the index and stats incrementally: both fresh.
  ASSERT_NE(t.GetIndex("rtime"), nullptr);
  EXPECT_TRUE(t.has_stats());
  EXPECT_FALSE(t.structures_stale());
  EXPECT_GT(t.stats_version(), version);
  auto ids = t.GetIndex("rtime")->RangeScan(std::nullopt, std::nullopt);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(t.row(ids[0])[1].timestamp_value(), Minutes(1));
  EXPECT_EQ(t.row(ids[1])[1].timestamp_value(), Minutes(3));
  EXPECT_EQ(t.row(ids[2])[1].timestamp_value(), Minutes(5));
  EXPECT_EQ(t.stats(1).ndv, 3u);
  EXPECT_EQ(t.stats(1).row_count, 3u);
}

TEST(StalenessTest, IngestBatchDoesNotFreshenStaleIndex) {
  Table t("reads", ReadsSchema());
  ASSERT_TRUE(t.Append(MakeRead("e1", Minutes(1), "r", "l", 1)).ok());
  ASSERT_TRUE(t.BuildIndex("rtime").ok());
  // Direct append makes the index stale; a later ingest batch only
  // covers its own rows, so the index must stay unusable.
  ASSERT_TRUE(t.Append(MakeRead("e2", Minutes(2), "r", "l", 2)).ok());
  ASSERT_TRUE(t.IngestBatch({MakeRead("e3", Minutes(3), "r", "l", 3)}).ok());
  EXPECT_EQ(t.GetIndex("rtime"), nullptr);
  ASSERT_TRUE(t.BuildIndex("rtime").ok());
  auto ids = t.GetIndex("rtime")->RangeScan(std::nullopt, std::nullopt);
  EXPECT_EQ(ids.size(), 3u);
}

TEST(StalenessTest, IngestBatchValidatesAndRollsBack) {
  Table t("reads", ReadsSchema());
  ASSERT_TRUE(t.Append(MakeRead("e1", Minutes(1), "r", "l", 1)).ok());
  ASSERT_TRUE(t.BuildIndex("rtime").ok());
  t.ComputeStats();
  uint64_t version = t.stats_version();

  Row bad = MakeRead("e2", Minutes(2), "r", "l", 2);
  bad[0] = Value::Int64(7);  // wrong type
  auto res = t.IngestBatch({MakeRead("e3", Minutes(3), "r", "l", 3), bad});
  EXPECT_FALSE(res.ok());
  // Nothing published: rows, watermark, index, stats all unchanged.
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.visible_rows(), 1u);
  ASSERT_NE(t.GetIndex("rtime"), nullptr);
  EXPECT_EQ(t.GetIndex("rtime")->num_entries(), 1u);
  EXPECT_EQ(t.stats_version(), version);
  EXPECT_TRUE(t.has_stats());
}

TEST(IndexTest, RunCompactionPreservesScanOrder) {
  Table t("reads", ReadsSchema());
  ASSERT_TRUE(t.BuildIndex("rtime").ok());
  t.ComputeStats();
  // Many single-row batches with a low compaction threshold: the run set
  // must repeatedly collapse and still scan in (value, row id) order.
  for (int i = 0; i < 40; ++i) {
    int64_t rt = Minutes((i * 7) % 40);
    ASSERT_TRUE(
        t.IngestBatch({MakeRead("e", rt, "r", "l", i)}, /*threshold=*/3).ok());
  }
  const SortedIndex* idx = t.GetIndex("rtime");
  ASSERT_NE(idx, nullptr);
  EXPECT_LE(idx->num_runs(), 4u);
  auto ids = idx->RangeScan(std::nullopt, std::nullopt);
  ASSERT_EQ(ids.size(), 40u);
  int64_t prev = -1;
  for (uint32_t id : ids) {
    int64_t v = t.row(id)[1].timestamp_value();
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(CatalogTest, CreateGetDrop) {
  Database db;
  auto created = db.CreateTable("caseR", ReadsSchema());
  ASSERT_TRUE(created.ok());
  EXPECT_NE(db.GetTable("caser"), nullptr);  // case-insensitive
  EXPECT_NE(db.GetTable("CASER"), nullptr);
  EXPECT_FALSE(db.CreateTable("CaseR", ReadsSchema()).ok());  // duplicate
  EXPECT_EQ(db.GetTable("other"), nullptr);
  EXPECT_FALSE(db.ResolveTable("other").ok());
  EXPECT_TRUE(db.DropTable("caseR").ok());
  EXPECT_EQ(db.GetTable("caseR"), nullptr);
  EXPECT_FALSE(db.DropTable("caseR").ok());
}

}  // namespace
}  // namespace rfid
