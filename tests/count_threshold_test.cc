// Tests for the COUNT(<set ref>) threshold extension (the SQL/OLAP
// capability Section 4.3 sketches: "if we change the scalar aggregate ...
// from max() to count(), we can further control how many reads by readerX
// should be observed before taking an action").
#include <gtest/gtest.h>

#include "cleansing/chain.h"
#include "cleansing/rule_parser.h"
#include "common/time_util.h"
#include "plan/planner.h"
#include "rewrite/rewriter.h"

namespace rfid {
namespace {

class CountThresholdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema reads;
    reads.AddColumn("epc", DataType::kString);
    reads.AddColumn("rtime", DataType::kTimestamp);
    reads.AddColumn("reader", DataType::kString);
    reads.AddColumn("biz_loc", DataType::kString);
    case_r_ = db_.CreateTable("caseR", reads).value();
    engine_ = std::make_unique<CleansingRuleEngine>(&db_);
  }

  void AddRead(const std::string& epc, int64_t rtime, const std::string& reader) {
    ASSERT_TRUE(case_r_
                    ->Append({Value::String(epc), Value::Timestamp(rtime),
                              Value::String(reader), Value::String("loc")})
                    .ok());
  }

  std::vector<Row> Clean() {
    std::vector<const CleansingRule*> rules;
    for (const CleansingRule& r : engine_->rules()) rules.push_back(&r);
    auto chain = BuildCleansingChain(rules, db_, "__input",
                                     case_r_->schema().columns());
    EXPECT_TRUE(chain.ok()) << chain.status().ToString();
    std::string sql = "WITH __input AS (SELECT * FROM caseR)";
    for (const auto& [name, body] : chain->with_clauses) {
      sql += ", " + name + " AS (" + body + ")";
    }
    sql += " SELECT * FROM " + chain->output_name;
    auto res = ExecuteSql(db_, sql);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.ok() ? res->rows : std::vector<Row>{};
  }

  Database db_;
  Table* case_r_ = nullptr;
  std::unique_ptr<CleansingRuleEngine> engine_;
};

TEST_F(CountThresholdTest, RequiresTwoMatchesBeforeDeleting) {
  // Delete a read only when at least TWO readerX reads trail it within 10
  // minutes — one is not enough.
  ASSERT_TRUE(engine_
                  ->DefineRule(
                      "DEFINE r ON caseR CLUSTER BY epc SEQUENCE BY rtime "
                      "AS (A, *B) "
                      "WHERE B.reader = 'readerX' AND COUNT(B) >= 2 AND "
                      "B.rtime - A.rtime < 10 MINUTES "
                      "ACTION DELETE A")
                  .ok());
  // e1: one trailing readerX read -> survives.
  AddRead("e1", Minutes(0), "r1");
  AddRead("e1", Minutes(2), "readerX");
  // e2: two trailing readerX reads -> deleted.
  AddRead("e2", Minutes(0), "r1");
  AddRead("e2", Minutes(2), "readerX");
  AddRead("e2", Minutes(4), "readerX");
  auto rows = Clean();
  // Survivors: both e1 reads, plus e2's two readerX reads (the first
  // readerX read of e2 is itself followed by only ONE readerX read).
  ASSERT_EQ(rows.size(), 4u);
  for (const Row& r : rows) {
    EXPECT_FALSE(r[0].string_value() == "e2" && r[2].string_value() == "r1");
  }
}

TEST_F(CountThresholdTest, BareCountWithoutPredicate) {
  // KEEP rows followed by at least 2 reads of any kind within an hour.
  ASSERT_TRUE(engine_
                  ->DefineRule(
                      "DEFINE k ON caseR CLUSTER BY epc SEQUENCE BY rtime "
                      "AS (A, *B) "
                      "WHERE COUNT(B) >= 2 AND B.rtime - A.rtime < 60 MINUTES "
                      "ACTION KEEP A")
                  .ok());
  AddRead("e1", Minutes(0), "r1");
  AddRead("e1", Minutes(5), "r1");
  AddRead("e1", Minutes(10), "r1");
  AddRead("e1", Minutes(200), "r1");
  auto rows = Clean();
  // Only the first read has >= 2 followers within the hour.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1].timestamp_value(), Minutes(0));
}

TEST_F(CountThresholdTest, TemplateUsesSumAggregate) {
  ASSERT_TRUE(engine_
                  ->DefineRule(
                      "DEFINE r ON caseR CLUSTER BY epc SEQUENCE BY rtime "
                      "AS (A, *B) "
                      "WHERE B.reader = 'readerX' AND COUNT(B) >= 3 "
                      "ACTION DELETE A")
                  .ok());
  auto res = ExecuteSql(db_, "SELECT template_sql FROM __rules");
  ASSERT_TRUE(res.ok());
  const std::string& tmpl = res->rows[0][0].string_value();
  EXPECT_NE(tmpl.find("SUM(CASE WHEN reader = 'readerX'"), std::string::npos)
      << tmpl;
  EXPECT_NE(tmpl.find(">= 3"), std::string::npos) << tmpl;
}

TEST_F(CountThresholdTest, RewritesStayCorrect) {
  ASSERT_TRUE(engine_
                  ->DefineRule(
                      "DEFINE r ON caseR CLUSTER BY epc SEQUENCE BY rtime "
                      "AS (A, *B) "
                      "WHERE B.reader = 'readerX' AND COUNT(B) >= 2 AND "
                      "B.rtime - A.rtime < 10 MINUTES "
                      "ACTION DELETE A")
                  .ok());
  AddRead("e1", Minutes(55), "r1");
  AddRead("e1", Minutes(57), "readerX");
  AddRead("e1", Minutes(58), "readerX");
  AddRead("e2", Minutes(50), "r1");
  ASSERT_TRUE(case_r_->BuildIndex("rtime").ok());
  case_r_->ComputeStats();

  QueryRewriter rewriter(&db_, engine_.get());
  std::string q = "SELECT epc, rtime FROM caseR WHERE rtime <= TIMESTAMP " +
                  std::to_string(Minutes(56));
  RewriteOptions naive;
  naive.strategy = RewriteStrategy::kNaive;
  auto truth = rewriter.Rewrite(q, naive);
  ASSERT_TRUE(truth.ok());
  auto truth_rows = ExecuteSql(db_, truth->sql);
  ASSERT_TRUE(truth_rows.ok());
  // e1@55 deleted (two readerX within 10m); e2@50 kept.
  ASSERT_EQ(truth_rows->rows.size(), 1u);
  EXPECT_EQ(truth_rows->rows[0][0].string_value(), "e2");

  for (RewriteStrategy s :
       {RewriteStrategy::kExpanded, RewriteStrategy::kJoinBack}) {
    RewriteOptions opts;
    opts.strategy = s;
    auto info = rewriter.Rewrite(q, opts);
    ASSERT_TRUE(info.ok()) << RewriteStrategyName(s);
    auto rows = ExecuteSql(db_, info->sql);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->rows.size(), 1u) << RewriteStrategyName(s);
  }
}

TEST_F(CountThresholdTest, CountOfSingletonRejected) {
  EXPECT_FALSE(engine_
                   ->DefineRule(
                       "DEFINE bad ON caseR CLUSTER BY epc SEQUENCE BY rtime "
                       "AS (A, B) WHERE COUNT(B) >= 2 ACTION DELETE A")
                   .ok());
}

TEST_F(CountThresholdTest, ArbitraryAggregateRejected) {
  EXPECT_FALSE(engine_
                   ->DefineRule(
                       "DEFINE bad ON caseR CLUSTER BY epc SEQUENCE BY rtime "
                       "AS (A, *B) WHERE SUM(B.rtime) >= 2 ACTION DELETE A")
                   .ok());
}

}  // namespace
}  // namespace rfid
