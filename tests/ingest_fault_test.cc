// Deterministic fault-injection sweep over the ingest path: for every
// injection point a batch application crosses, force a failure exactly
// there and prove the failed batch publishes nothing — no snapshot, no
// watermark advance, no stale-served index/stats, and no accounted
// memory left charged.
#include <gtest/gtest.h>

#include "common/fault.h"
#include "ingest/ingest.h"
#include "plan/planner.h"
#include "rfidgen/stream.h"
#include "storage/snapshot.h"

namespace rfid {
namespace {

using ingest::IngestPipeline;
using ingest::TableBatch;
using rfidgen::ReadStream;
using rfidgen::StreamBatch;
using rfidgen::StreamOptions;

std::vector<TableBatch> ToGroup(StreamBatch b) {
  std::vector<TableBatch> group;
  group.push_back({"caseR", std::move(b.case_rows)});
  group.push_back({"palletR", std::move(b.pallet_rows)});
  group.push_back({"parent", std::move(b.parent_rows)});
  group.push_back({"epc_info", std::move(b.info_rows)});
  return group;
}

StreamOptions TinyStream() {
  StreamOptions opt;
  opt.seed = 5;
  opt.num_pallets = 6;
  return opt;
}

// Batch size for the sweep: small enough that the stream always has
// events left after the failing batch (the retry half of the test).
constexpr size_t kSweepBatchRows = 80;

struct TableState {
  uint64_t visible;
  uint64_t num_rows;
  uint64_t stats_version;
  bool index_fresh;
  bool stats_fresh;
};

TableState Capture(const Table& t) {
  return {t.visible_rows(), t.num_rows(), t.stats_version(),
          !t.indexes().empty() || t.GetIndex("rtime") != nullptr,
          t.has_stats()};
}

TEST(IngestFaultTest, EveryStepFailureLeavesPipelineConsistent) {
  // Count the injection points one full batch application crosses.
  uint64_t total_steps = 0;
  {
    Database db;
    auto stream = ReadStream::Create(&db, TinyStream());
    ASSERT_TRUE(stream.ok());
    IngestPipeline pipeline(&db);
    FaultInjector counter = FaultInjector::CountOnly();
    ScopedFaultInjector scope(&counter);
    ASSERT_TRUE(pipeline.Apply(ToGroup((*stream)->NextBatch(kSweepBatchRows))).ok());
    total_steps = counter.steps();
  }
  ASSERT_GT(total_steps, 4u) << "expected several ingest fault points";

  for (uint64_t step = 0; step < total_steps; ++step) {
    Database db;
    auto stream = ReadStream::Create(&db, TinyStream());
    ASSERT_TRUE(stream.ok());
    ExecContext accounting;
    IngestPipeline pipeline(&db, &accounting);

    SnapshotPtr before_snap = pipeline.snapshot();
    std::vector<const char*> names = {"caseR", "palletR", "parent",
                                      "epc_info"};
    std::vector<TableState> before;
    for (const char* n : names) before.push_back(Capture(*db.GetTable(n)));

    Status st;
    FaultInjector injector = FaultInjector::FailAtStep(step);
    {
      ScopedFaultInjector scope(&injector);
      st = pipeline.Apply(ToGroup((*stream)->NextBatch(kSweepBatchRows)));
    }
    ASSERT_FALSE(st.ok()) << "step " << step << " did not fire";
    ASSERT_TRUE(injector.fired());

    // No snapshot published, failure counted, no memory left charged.
    EXPECT_EQ(pipeline.snapshot(), before_snap) << "step " << step;
    EXPECT_EQ(pipeline.epoch(), 0u) << "step " << step;
    EXPECT_EQ(pipeline.stats().batches_failed, 1u);
    EXPECT_EQ(pipeline.stats().rows_ingested, 0u);
    EXPECT_EQ(accounting.memory_used(), 0u)
        << "leaked accounted bytes at step " << step << " (site "
        << injector.fired_site() << ")";

    // Watermarks never advanced; whatever structures a table had are
    // either unchanged or (for tables whose batch landed before the
    // failing one) fully maintained — never stale-but-served.
    for (size_t i = 0; i < names.size(); ++i) {
      const Table* t = db.GetTable(names[i]);
      EXPECT_EQ(t->visible_rows(), t->num_rows())
          << names[i] << " left unpublished rows at step " << step;
      if (t->visible_rows() == before[i].visible) {
        EXPECT_EQ(t->stats_version(), before[i].stats_version)
            << names[i] << " stats changed without rows at step " << step;
      }
      EXPECT_FALSE(t->structures_stale())
          << names[i] << " serves stale structures at step " << step;
    }

    // Queries still work and see a consistent (pre-batch or per-table
    // committed) state under the pinned snapshot.
    ExecContext ctx;
    ctx.set_snapshot(pipeline.snapshot());
    auto res = ExecuteSql(db, "SELECT count(*) AS n FROM caseR", &ctx);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res->rows[0][0].int64_value(), 0);  // snapshot is epoch 0

    // The pipeline is not wedged: a clean retry of the remaining stream
    // succeeds and publishes.
    ASSERT_FALSE((*stream)->exhausted());
    while (!(*stream)->exhausted()) {
      Status retry = pipeline.Apply(ToGroup((*stream)->NextBatch(kSweepBatchRows)));
      ASSERT_TRUE(retry.ok()) << retry.ToString();
    }
    EXPECT_GT(pipeline.epoch(), 0u);
    EXPECT_EQ(accounting.memory_used(), 0u);
  }
}

TEST(IngestFaultTest, MidBatchRowFailureRollsBackAppendedRows) {
  // Target the per-row append site directly: fail a few rows into the
  // caseR batch and check TruncateTo rolled the store back.
  Database db;
  auto stream = ReadStream::Create(&db, TinyStream());
  ASSERT_TRUE(stream.ok());
  Table* case_r = db.GetTable("caseR");

  StreamBatch b = (*stream)->NextBatch(100);
  ASSERT_GT(b.case_rows.size(), 3u);

  // Count steps up to and including the first caseR row append.
  FaultInjector counter = FaultInjector::CountOnly();
  {
    ScopedFaultInjector scope(&counter);
    std::vector<Row> rows = b.case_rows;  // copy; original kept for retry
    Result<uint64_t> r = case_r->IngestBatch(std::move(rows));
    ASSERT_TRUE(r.ok());
  }
  // Roll back the successful trial run so the table is empty again.
  ASSERT_TRUE(case_r->ReplaceRows({}).ok());
  ASSERT_TRUE(case_r->BuildIndex("rtime").ok());
  ASSERT_TRUE(case_r->BuildIndex("epc").ok());
  case_r->ComputeStats();

  // Fail at each of the first several per-row append points.
  for (uint64_t step = 1; step < 4; ++step) {
    FaultInjector injector = FaultInjector::FailAtStep(step);
    ScopedFaultInjector scope(&injector);
    std::vector<Row> rows = b.case_rows;
    Result<uint64_t> r = case_r->IngestBatch(std::move(rows));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(case_r->num_rows(), 0u) << "step " << step;
    EXPECT_EQ(case_r->visible_rows(), 0u) << "step " << step;
    EXPECT_FALSE(case_r->structures_stale()) << "step " << step;
  }

  // And without the injector the same batch applies cleanly.
  Result<uint64_t> ok = case_r->IngestBatch(std::move(b.case_rows));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(case_r->visible_rows(), case_r->num_rows());
  EXPECT_NE(case_r->GetIndex("rtime"), nullptr);
}

}  // namespace
}  // namespace rfid
