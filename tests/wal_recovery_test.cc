// Crash-recovery validation for the durability subsystem.
//
// The headline guarantees under test:
//  - recovery equivalence: a database recovered from checkpoint + WAL
//    replay answers every query bit-identically (exact rows, exact
//    order) to the database that never crashed — across all three
//    cleansing rewrite strategies, serial and morsel-parallel;
//  - a corrupt-WAL corpus (flipped CRC byte, truncated record, garbage
//    tail) never blocks recovery and never serves damaged data: replay
//    stops at the last durable epoch boundary;
//  - a deterministic crash-point sweep over *every* fault-injection step
//    the attach/feed/checkpoint scenario crosses (WAL appends, commit
//    fsyncs, checkpoint image writes, manifest swaps) always recovers to
//    a valid epoch boundary at or past every acknowledged epoch;
//  - queries run concurrently with replay (the TSan target).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "exec/parallel.h"
#include "ingest/ingest.h"
#include "plan/planner.h"
#include "rewrite/rewriter.h"
#include "rfidgen/stream.h"
#include "rfidgen/workload.h"
#include "storage/snapshot.h"
#include "wal/wal_manager.h"

namespace rfid {
namespace {

using ingest::IngestPipeline;
using ingest::TableBatch;
using rfidgen::ReadStream;
using rfidgen::StreamBatch;
using rfidgen::StreamOptions;
using wal::WalManager;
using wal::WalOptions;

const char* const kStreamTables[] = {"caseR", "palletR", "parent", "epc_info"};

std::vector<TableBatch> ToGroup(StreamBatch b) {
  std::vector<TableBatch> group;
  group.push_back({"caseR", std::move(b.case_rows)});
  group.push_back({"palletR", std::move(b.pallet_rows)});
  group.push_back({"parent", std::move(b.parent_rows)});
  group.push_back({"epc_info", std::move(b.info_rows)});
  return group;
}

// Exact, order-sensitive serialization: recovered output must match the
// uninterrupted run row for row.
std::vector<std::string> Exact(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& r : rows) {
    std::string s;
    for (const Value& v : r) s += v.ToString() + "|";
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::string> RunExact(Database& db, const std::string& sql) {
  auto res = ExecuteSql(db, sql);
  EXPECT_TRUE(res.ok()) << sql << "\n" << res.status().ToString();
  return res.ok() ? Exact(res->rows) : std::vector<std::string>{};
}

// Per-epoch fingerprint of the ingest-fed tables: visible row counts for
// all four plus the full caseR contents in physical order.
struct EpochState {
  std::map<std::string, uint64_t> visible;
  std::vector<std::string> case_rows;
};

EpochState CaptureState(Database& db) {
  EpochState s;
  for (const char* name : kStreamTables) {
    const Table* t = db.GetTable(name);
    s.visible[name] = t == nullptr ? 0 : t->visible_rows();
  }
  s.case_rows = RunExact(db, "SELECT epc, rtime, reader, biz_loc FROM caseR");
  return s;
}

void ExpectState(Database& db, const EpochState& want, const char* label) {
  for (const char* name : kStreamTables) {
    const Table* t = db.GetTable(name);
    ASSERT_NE(t, nullptr) << label << ": " << name;
    EXPECT_EQ(t->visible_rows(), want.visible.at(name))
        << label << ": " << name;
    EXPECT_EQ(t->visible_rows(), t->num_rows())
        << label << ": " << name << " has unpublished rows";
    EXPECT_FALSE(t->structures_stale())
        << label << ": " << name << " serves stale structures";
  }
  EXPECT_EQ(RunExact(db, "SELECT epc, rtime, reader, biz_loc FROM caseR"),
            want.case_rows)
      << label << ": caseR contents diverged";
}

class WalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/rfid_walrec_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

// ---------------------------------------------------------------------
// Recovery equivalence: checkpoint + replay == the run that never
// crashed, under every rewrite strategy, serial and parallel.
// ---------------------------------------------------------------------

TEST_F(WalRecoveryTest, RecoveredQueriesBitIdenticalAcrossStrategies) {
  // Reference run: attach durability, feed four epochs, checkpoint, feed
  // four more — then "crash" by dropping the pipeline and manager cold.
  Database live;
  StreamOptions opt;
  opt.seed = 31;
  opt.num_pallets = 30;
  auto stream = ReadStream::Create(&live, opt);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  {
    auto manager = WalManager::Open(dir_, &live);
    ASSERT_TRUE(manager.ok()) << manager.status().ToString();
    IngestPipeline pipeline(&live, nullptr, 8, manager->get());
    for (int i = 0; i < 8; ++i) {
      ASSERT_FALSE((*stream)->exhausted());
      ASSERT_TRUE(pipeline.Apply(ToGroup((*stream)->NextBatch(120))).ok());
      if (i == 3) {
        ASSERT_TRUE(pipeline.Checkpoint().ok());
      }
    }
    EXPECT_EQ((*manager)->durable_epoch(), 8u);
  }

  Database recovered;
  auto manager = WalManager::Open(dir_, &recovered);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  EXPECT_TRUE((*manager)->recovery().recovered);
  EXPECT_EQ((*manager)->recovery().checkpoint_epoch, 4u);
  EXPECT_EQ((*manager)->recovery().replayed_epochs, 4u);
  EXPECT_EQ((*manager)->durable_epoch(), 8u);

  ExpectState(recovered, CaptureState(live), "recovered");

  // Same rules, same rewriter setup on both databases; the rewritten SQL
  // itself must agree (statistics and correlations recovered intact),
  // and so must every query's exact output.
  CleansingRuleEngine live_rules(&live);
  CleansingRuleEngine rec_rules(&recovered);
  for (const std::string& def : workload::StandardRuleDefinitions(3)) {
    ASSERT_TRUE(live_rules.DefineRule(def).ok()) << def;
    ASSERT_TRUE(rec_rules.DefineRule(def).ok()) << def;
  }
  QueryRewriter live_rw(&live, &live_rules);
  QueryRewriter rec_rw(&recovered, &rec_rules);

  std::string q1 = workload::Q1(workload::T1ForSelectivity(live, 0.5));
  for (RewriteStrategy strategy :
       {RewriteStrategy::kNaive, RewriteStrategy::kExpanded,
        RewriteStrategy::kJoinBack}) {
    RewriteOptions opts;
    opts.strategy = strategy;
    auto live_sql = live_rw.Rewrite(q1, opts);
    auto rec_sql = rec_rw.Rewrite(q1, opts);
    ASSERT_TRUE(live_sql.ok()) << live_sql.status().ToString();
    ASSERT_TRUE(rec_sql.ok()) << rec_sql.status().ToString();
    EXPECT_EQ(live_sql->sql, rec_sql->sql)
        << "rewrite diverged (strategy " << static_cast<int>(strategy) << ")";

    // Serial.
    SetParallelPolicyForTest(1, 0);
    EXPECT_EQ(RunExact(live, live_sql->sql), RunExact(recovered, rec_sql->sql))
        << "serial output diverged (strategy " << static_cast<int>(strategy)
        << ")";
    // Morsel-parallel.
    SetParallelPolicyForTest(4, 64);
    EXPECT_EQ(RunExact(live, live_sql->sql), RunExact(recovered, rec_sql->sql))
        << "parallel output diverged (strategy " << static_cast<int>(strategy)
        << ")";
    SetParallelPolicyForTest(0, 0);
  }
}

// ---------------------------------------------------------------------
// Corrupt-WAL corpus: damage never blocks recovery, never gets served.
// ---------------------------------------------------------------------

class CorruptWalTest : public WalRecoveryTest {
 protected:
  // Feeds `epochs` epochs (no mid-run checkpoint: everything lives in
  // the segment) and records the reference state after each.
  void BuildLog(uint64_t epochs) {
    Database live;
    StreamOptions opt;
    opt.seed = 77;
    opt.num_pallets = 8;
    auto stream = ReadStream::Create(&live, opt);
    ASSERT_TRUE(stream.ok());
    auto manager = WalManager::Open(dir_, &live);
    ASSERT_TRUE(manager.ok()) << manager.status().ToString();
    IngestPipeline pipeline(&live, nullptr, 8, manager->get());
    reference_.push_back(CaptureState(live));  // epoch 0 = base image
    for (uint64_t i = 0; i < epochs; ++i) {
      ASSERT_TRUE(pipeline.Apply(ToGroup((*stream)->NextBatch(60))).ok());
      reference_.push_back(CaptureState(live));
    }
    segment_ = dir_ + "/wal-0.log";
    ASSERT_TRUE(std::filesystem::exists(segment_)) << segment_;
  }

  std::string ReadSegment() {
    auto s = ReadFileToString(segment_);
    EXPECT_TRUE(s.ok());
    return s.ok() ? *s : std::string();
  }

  void WriteSegment(const std::string& bytes) {
    std::filesystem::remove(segment_);
    auto f = DurableFile::Create(segment_);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f->Append(bytes).ok());
    ASSERT_TRUE(f->Close().ok());
  }

  // Recovers from the (possibly damaged) directory and asserts the
  // result is exactly the reference state at some valid epoch boundary
  // >= `min_epoch`, still appendable. Returns the landed epoch.
  uint64_t ExpectRecoversToBoundary(uint64_t min_epoch, const char* label) {
    Database rec;
    auto manager = WalManager::Open(dir_, &rec);
    EXPECT_TRUE(manager.ok()) << label << ": " << manager.status().ToString();
    if (!manager.ok()) return 0;
    uint64_t epoch = (*manager)->durable_epoch();
    EXPECT_GE(epoch, min_epoch) << label;
    EXPECT_LT(epoch, reference_.size()) << label;
    ExpectState(rec, reference_[epoch], label);
    // The recovered directory accepts new epochs (writer reopened past
    // the truncated tail).
    IngestPipeline pipeline(&rec, nullptr, 8, manager->get());
    StreamOptions opt;
    opt.seed = 99;
    opt.num_pallets = 2;
    auto stream = ReadStream::Create(&rec, opt);
    EXPECT_TRUE(stream.ok());
    Status st = pipeline.Apply(ToGroup((*stream)->NextBatch(20)));
    EXPECT_TRUE(st.ok()) << label << ": " << st.ToString();
    EXPECT_EQ((*manager)->durable_epoch(), epoch + 1) << label;
    return epoch;
  }

  std::vector<EpochState> reference_;
  std::string segment_;
};

TEST_F(CorruptWalTest, FlippedCrcByteStopsAtPriorBoundary) {
  BuildLog(4);
  std::string bytes = ReadSegment();
  // Flip a byte ~3/4 into the log: some prefix of epochs survives, the
  // damaged one and everything after it must not.
  std::string damaged = bytes;
  size_t pos = bytes.size() * 3 / 4;
  damaged[pos] = static_cast<char>(damaged[pos] ^ 0x40);
  WriteSegment(damaged);
  uint64_t landed = ExpectRecoversToBoundary(0, "flipped-crc");
  EXPECT_LT(landed, 4u) << "damage at byte " << pos << " served anyway";
}

TEST_F(CorruptWalTest, TruncatedRecordDropsTheTornEpoch) {
  BuildLog(4);
  std::string bytes = ReadSegment();
  ASSERT_TRUE(TruncateFile(segment_, bytes.size() - bytes.size() / 5).ok());
  uint64_t landed = ExpectRecoversToBoundary(0, "truncated");
  EXPECT_LT(landed, 4u);
}

TEST_F(CorruptWalTest, GarbageTailIsTruncatedNotServed) {
  BuildLog(3);
  std::string bytes = ReadSegment();
  bytes += "\x00\xff\x13garbage appended by a confused process";
  WriteSegment(bytes);
  // Every real epoch survives; only the garbage goes.
  EXPECT_EQ(ExpectRecoversToBoundary(3, "garbage-tail"), 3u);
}

TEST_F(CorruptWalTest, MissingSegmentStillServesTheCheckpoint) {
  BuildLog(3);
  // Checkpoint the live state is gone — but the base image (epoch 0) is
  // in checkpoint-0; losing the whole segment falls back to it.
  std::filesystem::remove(segment_);
  Database rec;
  auto manager = WalManager::Open(dir_, &rec);
  // A missing segment is indistinguishable from "no epoch ever
  // committed" only if recovery tolerates NotFound; it must not serve
  // half a database either way.
  if (manager.ok()) {
    ExpectState(rec, reference_[(*manager)->durable_epoch()],
                "missing-segment");
  }
}

// ---------------------------------------------------------------------
// Crash-point sweep: fail at every injection step the full scenario
// crosses, recover, land on a valid epoch boundary >= every
// acknowledged epoch.
// ---------------------------------------------------------------------

constexpr uint64_t kSweepEpochs = 5;
constexpr uint64_t kSweepCheckpointAfter = 3;  // .checkpoint mid-scenario
constexpr size_t kSweepRows = 40;

StreamOptions SweepStream() {
  StreamOptions opt;
  opt.seed = 7;
  opt.num_pallets = 5;
  return opt;
}

struct SweepOutcome {
  uint64_t acked = 0;        // Apply() calls that returned OK
  bool attach_ok = false;
  bool finished = false;     // no fault fired anywhere
};

// The scenario under the injector: attach (base checkpoint), feed
// kSweepEpochs epochs with a checkpoint after kSweepCheckpointAfter.
// Bails at the first error — the process is "dead" from then on.
SweepOutcome RunScenario(Database* db, ReadStream* stream,
                         const std::string& dir) {
  SweepOutcome out;
  auto manager = WalManager::Open(dir, db);
  if (!manager.ok()) return out;
  out.attach_ok = true;
  IngestPipeline pipeline(db, nullptr, 8, manager->get());
  for (uint64_t i = 0; i < kSweepEpochs; ++i) {
    if (!pipeline.Apply(ToGroup(stream->NextBatch(kSweepRows))).ok()) {
      return out;
    }
    ++out.acked;
    if (i + 1 == kSweepCheckpointAfter && !pipeline.Checkpoint().ok()) {
      return out;
    }
  }
  out.finished = true;
  return out;
}

class CrashSweepTest : public WalRecoveryTest {
 protected:
  // Clean reference run: per-epoch states and the total step count.
  void BuildReference() {
    Database db;
    auto stream = ReadStream::Create(&db, SweepStream());
    ASSERT_TRUE(stream.ok());
    reference_.push_back(CaptureState(db));
    FaultInjector counter = FaultInjector::CountOnly();
    SweepOutcome out;
    {
      ScopedFaultInjector scope(&counter);
      out = RunScenario(&db, stream->get(), dir_ + "/ref");
    }
    ASSERT_TRUE(out.finished);
    total_steps_ = counter.steps();
    // Rebuild per-epoch states with a second, uninstrumented run (the
    // counting run above cannot stop between epochs).
    Database db2;
    auto stream2 = ReadStream::Create(&db2, SweepStream());
    ASSERT_TRUE(stream2.ok());
    auto manager = WalManager::Open(dir_ + "/ref2", &db2);
    ASSERT_TRUE(manager.ok());
    IngestPipeline pipeline(&db2, nullptr, 8, manager->get());
    for (uint64_t i = 0; i < kSweepEpochs; ++i) {
      ASSERT_TRUE(
          pipeline.Apply(ToGroup((*stream2)->NextBatch(kSweepRows))).ok());
      reference_.push_back(CaptureState(db2));
      if (i + 1 == kSweepCheckpointAfter) {
        ASSERT_TRUE(pipeline.Checkpoint().ok());
      }
    }
  }

  // After a crash at some step: recover from `dir` and check the
  // invariants against `out` (what the crashed run acknowledged).
  void ExpectValidRecovery(const std::string& dir, const SweepOutcome& out,
                           const std::string& label) {
    if (!std::filesystem::exists(dir + "/DURABLE")) {
      // The attach itself crashed before the first manifest swap:
      // nothing was ever durable, so nothing may have been acknowledged.
      EXPECT_EQ(out.acked, 0u) << label << ": acked epochs lost (no manifest)";
      return;
    }
    Database rec;
    auto manager = WalManager::Open(dir, &rec);
    ASSERT_TRUE(manager.ok()) << label << ": " << manager.status().ToString();
    const uint64_t epoch = (*manager)->durable_epoch();
    // Valid boundary: one of the states the writer actually produced,
    // at or past everything it acknowledged (an epoch whose COMMIT hit
    // disk before the crash may legitimately exceed `acked` by one).
    EXPECT_GE(epoch, out.acked) << label << ": acknowledged epoch lost";
    ASSERT_LT(epoch, reference_.size()) << label;
    ExpectState(rec, reference_[epoch], label.c_str());
  }

  std::vector<EpochState> reference_;
  uint64_t total_steps_ = 0;
};

TEST_F(CrashSweepTest, EveryCrashPointRecoversToValidEpochBoundary) {
  BuildReference();
  ASSERT_GT(total_steps_, 50u)
      << "scenario crosses too few fault points — wiring lost?";

  uint64_t fired_steps = 0;
  for (uint64_t step = 0; step < total_steps_; ++step) {
    const std::string dir = dir_ + "/step" + std::to_string(step);
    Database db;
    auto stream = ReadStream::Create(&db, SweepStream());
    ASSERT_TRUE(stream.ok());
    FaultInjector injector = FaultInjector::FailAtStep(step);
    SweepOutcome out;
    {
      ScopedFaultInjector scope(&injector);
      out = RunScenario(&db, stream->get(), dir);
    }
    ASSERT_TRUE(injector.fired()) << "step " << step << " did not fire";
    ASSERT_FALSE(out.finished) << "step " << step;
    ++fired_steps;
    ExpectValidRecovery(
        dir, out,
        "step " + std::to_string(step) + " (site " + injector.fired_site() +
            ")");
  }
  EXPECT_EQ(fired_steps, total_steps_);
}

TEST_F(CrashSweepTest, RandomizedCrashPoints) {
  // Seeded chaos pass for the scripts/check.sh crash-recovery loop:
  // RFID_CRASH_SEED selects which pokes fail this run.
  BuildReference();
  uint64_t seed = 42;
  if (const char* env = std::getenv("RFID_CRASH_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  for (uint64_t round = 0; round < 8; ++round) {
    const std::string dir = dir_ + "/round" + std::to_string(round);
    Database db;
    auto stream = ReadStream::Create(&db, SweepStream());
    ASSERT_TRUE(stream.ok());
    FaultInjector injector =
        FaultInjector::SeededRandom(seed * 1000 + round, 0.004);
    SweepOutcome out;
    {
      ScopedFaultInjector scope(&injector);
      out = RunScenario(&db, stream->get(), dir);
    }
    std::string label = "seed " + std::to_string(seed) + " round " +
                        std::to_string(round) +
                        (injector.fired()
                             ? " (site " + injector.fired_site() + " step " +
                                   std::to_string(injector.fired_step()) + ")"
                             : " (no fault)");
    if (out.finished) {
      // No fault fired: recovery must reproduce the final state.
      SweepOutcome done = out;
      done.acked = kSweepEpochs;
      ExpectValidRecovery(dir, done, label);
    } else {
      ExpectValidRecovery(dir, out, label);
    }
  }
}

// ---------------------------------------------------------------------
// Queries live through replay (the TSan target): readers pin snapshots
// and run SQL while recovery replays committed epochs into the tables.
// ---------------------------------------------------------------------

TEST_F(WalRecoveryTest, QueriesRunConcurrentlyWithReplay) {
  // Build a directory whose segment carries a meaningful replay tail.
  EpochState base, final_state;
  {
    Database live;
    StreamOptions opt;
    opt.seed = 13;
    opt.num_pallets = 16;
    auto stream = ReadStream::Create(&live, opt);
    ASSERT_TRUE(stream.ok());
    auto manager = WalManager::Open(dir_, &live);
    ASSERT_TRUE(manager.ok());
    base = CaptureState(live);
    IngestPipeline pipeline(&live, nullptr, 8, manager->get());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(pipeline.Apply(ToGroup((*stream)->NextBatch(80))).ok());
    }
    final_state = CaptureState(live);
  }

  Database rec;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> iterations{0};
  std::atomic<uint64_t> violations{0};
  std::vector<std::thread> readers;
  WalOptions options;
  // Readers start once the checkpoint image is loaded (tables exist) and
  // run through the whole replay.
  options.after_checkpoint_load = [&] {
    for (int t = 0; t < 3; ++t) {
      readers.emplace_back([&] {
        int64_t last_count = -1;
        while (!stop.load(std::memory_order_acquire)) {
          SnapshotPtr snap = CaptureDatabaseSnapshot(rec, 0);
          ExecContext ctx;
          ctx.set_snapshot(snap);
          auto res = ExecuteSql(rec, "SELECT count(*) FROM caseR", &ctx);
          if (!res.ok()) {
            ++violations;
            continue;
          }
          int64_t n = res->rows[0][0].int64_value();
          // Watermarks only move forward under replay, and never past
          // the final state.
          if (n < last_count ||
              n > static_cast<int64_t>(final_state.visible.at("caseR"))) {
            ++violations;
          }
          last_count = n;
          ++iterations;
        }
      });
    }
  };

  auto manager = WalManager::Open(dir_, &rec, options);
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  EXPECT_EQ((*manager)->recovery().replayed_epochs, 20u);
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(iterations.load(), 0u) << "readers never overlapped replay";
  ExpectState(rec, final_state, "post-replay");
}

}  // namespace
}  // namespace rfid
