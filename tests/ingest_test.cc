// Ingest subsystem tests: stream determinism, incremental index/stats
// maintenance vs full rebuilds, epoch snapshot isolation, the driver
// harness, and the persist round-trip after incremental appends.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "ingest/ingest.h"
#include "plan/planner.h"
#include "rfidgen/rfidgen.h"
#include "rfidgen/stream.h"
#include "storage/persist.h"
#include "storage/snapshot.h"

namespace rfid {
namespace {

using ingest::IngestDriver;
using ingest::IngestPipeline;
using ingest::TableBatch;
using rfidgen::ReadStream;
using rfidgen::StreamBatch;
using rfidgen::StreamOptions;

std::vector<TableBatch> ToGroup(StreamBatch b) {
  std::vector<TableBatch> group;
  group.push_back({"caseR", std::move(b.case_rows)});
  group.push_back({"palletR", std::move(b.pallet_rows)});
  group.push_back({"parent", std::move(b.parent_rows)});
  group.push_back({"epc_info", std::move(b.info_rows)});
  return group;
}

StreamOptions SmallStream(uint64_t seed = 7) {
  StreamOptions opt;
  opt.seed = seed;
  opt.num_pallets = 8;
  return opt;
}

// Feeds the whole stream through a pipeline in `rows_per_batch` slices.
void FeedAll(ReadStream* stream, IngestPipeline* pipeline,
             size_t rows_per_batch) {
  while (!stream->exhausted()) {
    Status st = pipeline->Apply(ToGroup(stream->NextBatch(rows_per_batch)));
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
}

uint64_t CountStar(const Database& db, const std::string& table,
                   ExecContext* ctx = nullptr) {
  auto res = ExecuteSql(db, "SELECT count(*) AS n FROM " + table, ctx);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return res.ok() ? static_cast<uint64_t>(res->rows[0][0].int64_value()) : 0;
}

TEST(ReadStreamTest, DeterministicAndTimeOrdered) {
  Database db1;
  Database db2;
  auto s1 = ReadStream::Create(&db1, SmallStream());
  auto s2 = ReadStream::Create(&db2, SmallStream());
  ASSERT_TRUE(s1.ok()) << s1.status().ToString();
  ASSERT_TRUE(s2.ok());
  EXPECT_GT((*s1)->stats().case_reads, 0);
  EXPECT_EQ((*s1)->stats().case_reads, (*s2)->stats().case_reads);
  EXPECT_EQ((*s1)->stats().duplicates, (*s2)->stats().duplicates);
  EXPECT_EQ((*s1)->events_remaining(), (*s2)->events_remaining());

  // rtime of emitted case reads never decreases across batch boundaries.
  int64_t prev = INT64_MIN;
  while (!(*s1)->exhausted()) {
    StreamBatch b = (*s1)->NextBatch(64);
    for (const Row& r : b.case_rows) {
      EXPECT_GE(r[1].timestamp_value(), prev);
      prev = r[1].timestamp_value();
    }
  }
}

TEST(ReadStreamTest, InjectsAnomalies) {
  Database db;
  StreamOptions opt = SmallStream();
  opt.num_pallets = 30;
  auto stream = ReadStream::Create(&db, opt);
  ASSERT_TRUE(stream.ok());
  EXPECT_GT((*stream)->stats().duplicates, 0);
  EXPECT_GT((*stream)->stats().reader_rereads, 0);
  EXPECT_GT((*stream)->stats().missing, 0);
}

TEST(IngestPipelineTest, IncrementalIndexMatchesRebuild) {
  Database db;
  auto stream = ReadStream::Create(&db, SmallStream());
  ASSERT_TRUE(stream.ok());
  IngestPipeline pipeline(&db);
  FeedAll(stream->get(), &pipeline, 97);  // odd size: uneven run lengths

  Table* case_r = db.GetTable("caseR");
  ASSERT_NE(case_r, nullptr);
  ASSERT_GT(case_r->num_rows(), 0u);
  for (const char* col : {"rtime", "epc"}) {
    const SortedIndex* idx = case_r->GetIndex(col);
    ASSERT_NE(idx, nullptr) << col;
    EXPECT_GT(idx->num_runs(), 0u);
    auto incremental = idx->RangeScan(std::nullopt, std::nullopt);
    ASSERT_TRUE(case_r->BuildIndex(col).ok());
    auto rebuilt =
        case_r->GetIndex(col)->RangeScan(std::nullopt, std::nullopt);
    EXPECT_EQ(incremental, rebuilt) << col;
  }
}

TEST(IngestPipelineTest, IncrementalStatsMatchRecompute) {
  Database db;
  auto stream = ReadStream::Create(&db, SmallStream());
  ASSERT_TRUE(stream.ok());
  IngestPipeline pipeline(&db);
  FeedAll(stream->get(), &pipeline, 64);

  for (const char* name : {"caseR", "palletR", "parent", "epc_info"}) {
    Table* table = db.GetTable(name);
    ASSERT_NE(table, nullptr);
    ASSERT_TRUE(table->has_stats()) << name;
    StatsView incremental = table->CurrentStatsView();
    ASSERT_NE(incremental.stats, nullptr);
    table->ComputeStats();
    StatsView recomputed = table->CurrentStatsView();
    ASSERT_EQ(incremental.stats->size(), recomputed.stats->size());
    for (size_t c = 0; c < incremental.stats->size(); ++c) {
      // The KMV sketch is order/batch-boundary independent, so the
      // incrementally merged stats equal a from-scratch recompute
      // exactly — ndv, min/max, null counts, and the sketch itself.
      EXPECT_EQ((*incremental.stats)[c], (*recomputed.stats)[c])
          << name << " column " << c;
    }
  }
}

TEST(IngestPipelineTest, SnapshotIsolatesQueries) {
  Database db;
  auto stream = ReadStream::Create(&db, SmallStream());
  ASSERT_TRUE(stream.ok());
  IngestPipeline pipeline(&db);

  ASSERT_TRUE(pipeline.Apply(ToGroup((*stream)->NextBatch(100))).ok());
  SnapshotPtr pinned = pipeline.snapshot();
  const Table* case_r = db.GetTable("caseR");
  const TableSnapshot* ts = pinned->ForTable(case_r);
  ASSERT_NE(ts, nullptr);
  uint64_t pinned_rows = ts->watermark;

  // More batches land after the snapshot was pinned.
  FeedAll(stream->get(), &pipeline, 100);
  ASSERT_GT(case_r->visible_rows(), pinned_rows);

  ExecContext pinned_ctx;
  pinned_ctx.set_snapshot(pinned);
  EXPECT_EQ(CountStar(db, "caseR", &pinned_ctx), pinned_rows);
  // Index scans under the pinned snapshot are filtered to the watermark:
  // a selective rtime predicate (index-scannable) must count exactly the
  // qualifying rows below it, never rows ingested afterwards.
  int64_t mid = ((*stream)->stats().t_begin + (*stream)->stats().t_end) / 2;
  uint64_t expected = 0;
  for (uint64_t i = 0; i < pinned_rows; ++i) {
    if (case_r->row(i)[1].timestamp_value() >= mid) ++expected;
  }
  auto res = ExecuteSql(db,
                        "SELECT count(*) AS n FROM caseR WHERE rtime >= "
                        "TIMESTAMP " +
                            std::to_string(mid),
                        &pinned_ctx);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(static_cast<uint64_t>(res->rows[0][0].int64_value()), expected);

  // A fresh snapshot (or no snapshot) sees everything.
  ExecContext live_ctx;
  live_ctx.set_snapshot(pipeline.snapshot());
  EXPECT_EQ(CountStar(db, "caseR", &live_ctx), case_r->visible_rows());
  EXPECT_EQ(CountStar(db, "caseR"), case_r->visible_rows());
}

TEST(IngestPipelineTest, FailedApplyPublishesNothing) {
  Database db;
  auto stream = ReadStream::Create(&db, SmallStream());
  ASSERT_TRUE(stream.ok());
  IngestPipeline pipeline(&db);
  ASSERT_TRUE(pipeline.Apply(ToGroup((*stream)->NextBatch(50))).ok());
  uint64_t epoch = pipeline.epoch();
  SnapshotPtr before = pipeline.snapshot();

  // Unknown destination table: the Apply fails before any append.
  std::vector<TableBatch> bad;
  bad.push_back({"no_such_table", {{Value::Int64(1)}}});
  Status st = pipeline.Apply(std::move(bad));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(pipeline.epoch(), epoch);
  EXPECT_EQ(pipeline.snapshot(), before);
  EXPECT_EQ(pipeline.stats().batches_failed, 1u);
}

TEST(IngestDriverTest, DrivesStreamToExhaustion) {
  Database db;
  auto stream = ReadStream::Create(&db, SmallStream());
  ASSERT_TRUE(stream.ok());
  ReadStream* src = stream->get();
  IngestPipeline pipeline(&db);
  IngestDriver driver(&pipeline,
                      [src] { return ToGroup(src->NextBatch(128)); });
  driver.Start();
  Status st = driver.Join();
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(src->exhausted());
  EXPECT_GT(driver.batches_applied(), 0u);
  EXPECT_EQ(pipeline.stats().epochs_published, driver.batches_applied());
  EXPECT_EQ(db.GetTable("caseR")->visible_rows(),
            static_cast<uint64_t>(src->stats().case_reads));
}

TEST(IngestPersistTest, RoundTripAfterIncrementalAppends) {
  Database db;
  auto stream = ReadStream::Create(&db, SmallStream(11));
  ASSERT_TRUE(stream.ok());
  IngestPipeline pipeline(&db);
  FeedAll(stream->get(), &pipeline, 73);

  std::string dir = ::testing::TempDir() + "/rfid_ingest_roundtrip";
  ASSERT_TRUE(SaveDatabase(db, dir).ok());

  Database reloaded;
  ASSERT_TRUE(LoadDatabase(dir, &reloaded, /*skip_existing=*/false).ok());
  ASSERT_TRUE(rfidgen::FinalizeDatabase(&reloaded).ok());

  for (const char* name : {"caseR", "palletR", "parent", "epc_info"}) {
    Table* orig = db.GetTable(name);
    Table* copy = reloaded.GetTable(name);
    ASSERT_NE(copy, nullptr) << name;
    ASSERT_EQ(orig->num_rows(), copy->num_rows()) << name;
    for (size_t i = 0; i < orig->num_rows(); ++i) {
      const Row& a = orig->row(i);
      const Row& b = copy->row(i);
      ASSERT_EQ(a.size(), b.size());
      for (size_t c = 0; c < a.size(); ++c) {
        ASSERT_EQ(a[c].Compare(b[c]), 0) << name << " row " << i;
      }
    }
    // Rebuilt-from-disk statistics equal the incrementally maintained
    // ones bit-for-bit (mergeable-sketch invariant).
    if (orig->has_stats()) {
      ASSERT_TRUE(copy->has_stats()) << name;
      StatsView a = orig->CurrentStatsView();
      StatsView b = copy->CurrentStatsView();
      for (size_t c = 0; c < a.stats->size(); ++c) {
        EXPECT_EQ((*a.stats)[c], (*b.stats)[c]) << name << " column " << c;
      }
    }
    // Rebuilt indexes scan identically to the incrementally grown ones.
    for (const SortedIndex* orig_idx : orig->indexes()) {
      const SortedIndex* copy_idx = copy->GetIndex(orig_idx->column_name());
      ASSERT_NE(copy_idx, nullptr) << name << " " << orig_idx->column_name();
      EXPECT_EQ(orig_idx->RangeScan(std::nullopt, std::nullopt),
                copy_idx->RangeScan(std::nullopt, std::nullopt))
          << name << " " << orig_idx->column_name();
    }
  }
}

TEST(SnapshotTest, CaptureReflectsPublishedState) {
  Database db;
  Schema s;
  s.AddColumn("k", DataType::kInt64);
  auto table = db.CreateTable("t", s);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Append({Value::Int64(1)}).ok());
  ASSERT_TRUE((*table)->BuildIndex("k").ok());
  (*table)->ComputeStats();

  SnapshotPtr snap = CaptureDatabaseSnapshot(db, 42);
  EXPECT_EQ(snap->epoch, 42u);
  const TableSnapshot* ts = snap->ForTable(*table);
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->watermark, 1u);
  EXPECT_NE(ts->FindIndex("k"), nullptr);
  EXPECT_EQ(ts->FindIndex("missing"), nullptr);
  ASSERT_NE(ts->stats, nullptr);
  EXPECT_EQ(ts->stats_view().row_count, 1.0);
  EXPECT_NE(ts->RunsFor(ts->FindIndex("k")), nullptr);
}

}  // namespace
}  // namespace rfid
