// Query-during-load: four query threads run the paper's q1 through the
// naive, expanded, and join-back rewrites against snapshots pinned from
// a live IngestDriver that is publishing epochs the whole time. Every
// iteration checks the snapshot contract — a raw count equals the
// pinned watermark exactly, watermarks are monotone per thread, and all
// three rewrite strategies agree on the same snapshot. The test demands
// at least 50 published epochs and zero violations, and is the target
// of the RFID_SANITIZE=thread pass in scripts/check.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ingest/ingest.h"
#include "plan/planner.h"
#include "rewrite/rewriter.h"
#include "rfidgen/stream.h"
#include "rfidgen/workload.h"
#include "storage/snapshot.h"

namespace rfid {
namespace {

using ingest::IngestDriver;
using ingest::IngestPipeline;
using ingest::TableBatch;
using rfidgen::ReadStream;
using rfidgen::StreamBatch;
using rfidgen::StreamOptions;

constexpr int kQueryThreads = 4;
constexpr uint64_t kMinEpochs = 50;
constexpr size_t kBatchRows = 30;
constexpr uint64_t kWarmupEpochs = 10;

std::vector<TableBatch> ToGroup(StreamBatch b) {
  std::vector<TableBatch> group;
  group.push_back({"caseR", std::move(b.case_rows)});
  group.push_back({"palletR", std::move(b.pallet_rows)});
  group.push_back({"parent", std::move(b.parent_rows)});
  group.push_back({"epc_info", std::move(b.info_rows)});
  return group;
}

std::vector<std::string> Canonical(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  for (const Row& r : rows) {
    std::string s;
    for (const Value& v : r) s += v.ToString() + "|";
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct ThreadReport {
  uint64_t iterations = 0;
  uint64_t violations = 0;
  std::string first_violation;
};

TEST(IngestConcurrencyTest, QueriesStaySnapshotConsistentUnderLiveLoad) {
  Database db;
  StreamOptions opt;
  opt.seed = 11;
  opt.num_pallets = 48;
  auto stream = ReadStream::Create(&db, opt);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();

  IngestPipeline pipeline(&db);

  // Warm up: publish a few epochs synchronously so rtime stats exist
  // before computing the q1 predicate (stats() is only read here, before
  // any concurrent writer runs).
  for (uint64_t i = 0; i < kWarmupEpochs; ++i) {
    ASSERT_FALSE((*stream)->exhausted());
    Status st = pipeline.Apply(ToGroup((*stream)->NextBatch(kBatchRows)));
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  const std::string q1 = workload::Q1(workload::T1ForSelectivity(db, 0.8));
  const Table* case_r = db.GetTable("caseR");
  ASSERT_NE(case_r, nullptr);

  // Engines persist rule templates into shared catalog tables
  // (__rules), so each thread's engine and rewriter are built up front,
  // before any concurrency; the threads only rewrite and execute.
  std::vector<std::unique_ptr<CleansingRuleEngine>> engines;
  std::vector<std::unique_ptr<QueryRewriter>> rewriters;
  for (int t = 0; t < kQueryThreads; ++t) {
    engines.push_back(std::make_unique<CleansingRuleEngine>(&db));
    for (const std::string& def : workload::StandardRuleDefinitions(3)) {
      Status st = engines.back()->DefineRule(def);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    rewriters.push_back(
        std::make_unique<QueryRewriter>(&db, engines.back().get()));
  }

  IngestDriver::Options dopt;
  dopt.pause_micros = 1000;
  IngestDriver driver(
      &pipeline,
      [&stream]() {
        if ((*stream)->exhausted()) return std::vector<TableBatch>{};
        return ToGroup((*stream)->NextBatch(kBatchRows));
      },
      dopt);

  std::atomic<bool> load_done{false};
  std::vector<ThreadReport> reports(kQueryThreads);
  std::vector<std::thread> threads;

  driver.Start();
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&, t]() {
      QueryRewriter& rewriter = *rewriters[t];
      ThreadReport& rep = reports[t];
      uint64_t last_watermark = 0;
      auto fail = [&rep](const std::string& msg) {
        rep.violations++;
        if (rep.first_violation.empty()) rep.first_violation = msg;
      };

      bool final_pass = false;
      while (true) {
        if (load_done.load(std::memory_order_acquire)) final_pass = true;
        SnapshotPtr snap = pipeline.snapshot();
        ExecContext ctx;
        ctx.set_snapshot(snap);
        const TableSnapshot* ts = snap->ForTable(case_r);
        if (ts == nullptr) {
          fail("snapshot missing caseR");
          return;
        }

        // Watermarks only ever advance.
        if (ts->watermark < last_watermark) {
          fail("watermark went backwards");
          return;
        }
        last_watermark = ts->watermark;

        // A raw count under the pinned snapshot is exactly the pinned
        // watermark — not one row more, no matter what the writer has
        // appended since.
        auto count = ExecuteSql(db, "SELECT count(*) FROM caseR", &ctx);
        if (!count.ok()) {
          fail("count failed: " + count.status().ToString());
          return;
        }
        uint64_t seen =
            static_cast<uint64_t>(count->rows[0][0].int64_value());
        if (seen != ts->watermark) {
          fail("count " + std::to_string(seen) + " != watermark " +
               std::to_string(ts->watermark));
        }

        // All three rewrite strategies, evaluated against the same
        // pinned snapshot, agree on q1.
        std::vector<std::string> truth;
        for (RewriteStrategy strategy :
             {RewriteStrategy::kNaive, RewriteStrategy::kExpanded,
              RewriteStrategy::kJoinBack}) {
          RewriteOptions ropt;
          ropt.strategy = strategy;
          ropt.exec_context = &ctx;
          auto info = rewriter.Rewrite(q1, ropt);
          if (!info.ok()) {
            fail("rewrite failed: " + info.status().ToString());
            return;
          }
          auto res = ExecuteSql(db, info->sql, &ctx);
          if (!res.ok()) {
            fail("query failed: " + res.status().ToString());
            return;
          }
          std::vector<std::string> got = Canonical(res->rows);
          if (strategy == RewriteStrategy::kNaive) {
            truth = std::move(got);
          } else if (got != truth) {
            fail("strategy disagreement at watermark " +
                 std::to_string(ts->watermark));
          }
        }
        rep.iterations++;
        if (final_pass) return;
      }
    });
  }

  Status load = driver.Join();
  load_done.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();

  EXPECT_TRUE(load.ok()) << load.ToString();
  EXPECT_TRUE((*stream)->exhausted());
  EXPECT_GE(pipeline.epoch(), kMinEpochs)
      << "stream too small to exercise enough epochs";
  EXPECT_EQ(pipeline.stats().batches_failed, 0u);

  uint64_t total_iters = 0;
  for (int t = 0; t < kQueryThreads; ++t) {
    EXPECT_EQ(reports[t].violations, 0u)
        << "thread " << t << ": " << reports[t].first_violation;
    EXPECT_GE(reports[t].iterations, 1u) << "thread " << t << " never ran";
    total_iters += reports[t].iterations;
  }
  EXPECT_GE(total_iters, static_cast<uint64_t>(kQueryThreads));

  // After the load completes, a fresh snapshot sees every row.
  ExecContext ctx;
  ctx.set_snapshot(pipeline.snapshot());
  auto final_count = ExecuteSql(db, "SELECT count(*) FROM caseR", &ctx);
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(static_cast<uint64_t>(final_count->rows[0][0].int64_value()),
            case_r->visible_rows());
}

}  // namespace
}  // namespace rfid
