// Tests for the SQL-TS rule parser, the SQL/OLAP rule compiler, and the
// cleansing chain — including all five example rules of Section 4.3 and
// the rule-ordering example of Section 4.4.
#include <gtest/gtest.h>

#include "cleansing/chain.h"
#include "cleansing/rule_parser.h"
#include "common/time_util.h"
#include "plan/planner.h"
#include "sql/render.h"

namespace rfid {
namespace {

constexpr const char* kDuplicateRule =
    "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime "
    "AS (A, B) "
    "WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 MINUTES "
    "ACTION DELETE B";

constexpr const char* kReaderRule =
    "DEFINE reader ON caseR CLUSTER BY epc SEQUENCE BY rtime "
    "AS (A, *B) "
    "WHERE B.reader = 'readerX' AND B.rtime - A.rtime < 10 MINUTES "
    "ACTION DELETE A";

constexpr const char* kReplacingRule =
    "DEFINE replacing ON caseR CLUSTER BY epc SEQUENCE BY rtime "
    "AS (A, B) "
    "WHERE A.biz_loc = 'loc2' AND B.biz_loc = 'locA' AND "
    "B.rtime - A.rtime < 20 MINUTES "
    "ACTION MODIFY A.biz_loc = 'loc1'";

constexpr const char* kCycleRule =
    "DEFINE cycle ON caseR CLUSTER BY epc SEQUENCE BY rtime "
    "AS (A, B, C) "
    "WHERE A.biz_loc = C.biz_loc AND A.biz_loc <> B.biz_loc "
    "ACTION DELETE B";

// Missing-read compensation (Example 5), split into sub-rules r1/r2 over
// the derived caseR ∪ expected-pallet-reads input.
constexpr const char* kMissingRule1 =
    "DEFINE missing_r1 ON caseR "
    "FROM (select epc, rtime, biz_loc, reader, 0 as is_pallet from caseR "
    "      union all "
    "      select parent.child_epc as epc, palletR.rtime, palletR.biz_loc, "
    "             palletR.reader, 1 as is_pallet "
    "      from palletR, parent where palletR.epc = parent.parent_epc) "
    "CLUSTER BY epc SEQUENCE BY rtime "
    "AS (X, A, Y) "
    "WHERE A.is_pallet = 1 AND "
    "((X.is_pallet = 0 AND A.biz_loc = X.biz_loc AND "
    "  A.rtime - X.rtime < 5 MINUTES) OR "
    " (Y.is_pallet = 0 AND A.biz_loc = Y.biz_loc AND "
    "  Y.rtime - A.rtime < 5 MINUTES)) "
    "ACTION MODIFY A.has_case_nearby = 1";

constexpr const char* kMissingRule2 =
    "DEFINE missing_r2 ON caseR CLUSTER BY epc SEQUENCE BY rtime "
    "AS (A, *B) "
    "WHERE A.is_pallet = 0 OR "
    "(A.has_case_nearby = 0 AND B.has_case_nearby = 1) "
    "ACTION KEEP A";

class CleansingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema reads;
    reads.AddColumn("epc", DataType::kString);
    reads.AddColumn("rtime", DataType::kTimestamp);
    reads.AddColumn("reader", DataType::kString);
    reads.AddColumn("biz_loc", DataType::kString);
    case_r_ = db_.CreateTable("caseR", reads).value();
    pallet_r_ = db_.CreateTable("palletR", reads).value();
    Schema parent;
    parent.AddColumn("child_epc", DataType::kString);
    parent.AddColumn("parent_epc", DataType::kString);
    parent_ = db_.CreateTable("parent", parent).value();
    engine_ = std::make_unique<CleansingRuleEngine>(&db_);
  }

  void AddRead(Table* t, const std::string& epc, int64_t rtime,
               const std::string& reader, const std::string& loc) {
    ASSERT_TRUE(t->Append({Value::String(epc), Value::Timestamp(rtime),
                           Value::String(reader), Value::String(loc)})
                    .ok());
  }

  // Runs the given rules over the full caseR table (naive cleansing) and
  // returns the resulting rows.
  std::vector<Row> Clean(const std::vector<std::string>& rule_texts,
                         std::string select_cols = "*") {
    std::vector<const CleansingRule*> rules;
    for (const std::string& text : rule_texts) {
      Status st = engine_->DefineRule(text);
      EXPECT_TRUE(st.ok()) << st.ToString();
      if (!st.ok()) return {};
    }
    for (const CleansingRule& r : engine_->rules()) rules.push_back(&r);
    auto chain = BuildCleansingChain(rules, db_, "__input",
                                     case_r_->schema().columns());
    EXPECT_TRUE(chain.ok()) << chain.status().ToString();
    if (!chain.ok()) return {};
    std::string sql = "WITH __input AS (SELECT * FROM caseR)";
    for (const auto& [name, body] : chain->with_clauses) {
      sql += ", " + name + " AS (" + body + ")";
    }
    sql += " SELECT " + select_cols + " FROM " + chain->output_name;
    auto res = ExecuteSql(db_, sql);
    EXPECT_TRUE(res.ok()) << sql << "\n" << res.status().ToString();
    if (!res.ok()) return {};
    last_desc_ = res->desc;
    return res->rows;
  }

  Database db_;
  Table* case_r_ = nullptr;
  Table* pallet_r_ = nullptr;
  Table* parent_ = nullptr;
  std::unique_ptr<CleansingRuleEngine> engine_;
  RowDesc last_desc_;
};

TEST_F(CleansingTest, ParseDuplicateRule) {
  auto rule = ParseRule(kDuplicateRule);
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->name, "duplicate");
  EXPECT_EQ(rule->on_table, "caseR");
  EXPECT_EQ(rule->ckey, "epc");
  EXPECT_EQ(rule->skey, "rtime");
  ASSERT_EQ(rule->pattern.size(), 2u);
  EXPECT_FALSE(rule->pattern[0].is_set);
  EXPECT_EQ(rule->action, RuleAction::kDelete);
  EXPECT_EQ(rule->target, "B");
  EXPECT_EQ(rule->TargetIndex(), 1);
}

TEST_F(CleansingTest, ParseSetReferenceAndModify) {
  auto rule = ParseRule(kReaderRule);
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_TRUE(rule->pattern[1].is_set);
  EXPECT_EQ(rule->target, "A");

  auto mod = ParseRule(kReplacingRule);
  ASSERT_TRUE(mod.ok()) << mod.status().ToString();
  EXPECT_EQ(mod->action, RuleAction::kModify);
  ASSERT_EQ(mod->assignments.size(), 1u);
  EXPECT_EQ(mod->assignments[0].column, "biz_loc");
  EXPECT_EQ(mod->target, "A");
}

TEST_F(CleansingTest, ParseDerivedInput) {
  auto rule = ParseRule(kMissingRule1);
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_TRUE(rule->HasDerivedInput());
  EXPECT_EQ(rule->from_select->cores.size(), 2u);  // UNION ALL
}

TEST_F(CleansingTest, ValidationRejectsBadRules) {
  // Set reference in the middle.
  EXPECT_FALSE(ParseRule("DEFINE x ON caseR CLUSTER BY epc SEQUENCE BY rtime "
                         "AS (A, *B, C) WHERE A.epc = C.epc ACTION DELETE A")
                   .ok());
  // Target is a set.
  EXPECT_FALSE(ParseRule("DEFINE x ON caseR CLUSTER BY epc SEQUENCE BY rtime "
                         "AS (A, *B) WHERE B.reader = 'x' ACTION DELETE B")
                   .ok());
  // Unknown reference in condition.
  EXPECT_FALSE(ParseRule("DEFINE x ON caseR CLUSTER BY epc SEQUENCE BY rtime "
                         "AS (A, B) WHERE Z.epc = A.epc ACTION DELETE A")
                   .ok());
  // Unqualified condition column.
  EXPECT_FALSE(ParseRule("DEFINE x ON caseR CLUSTER BY epc SEQUENCE BY rtime "
                         "AS (A, B) WHERE epc = A.epc ACTION DELETE A")
                   .ok());
  // Duplicate reference names.
  EXPECT_FALSE(ParseRule("DEFINE x ON caseR CLUSTER BY epc SEQUENCE BY rtime "
                         "AS (A, A) WHERE A.epc = A.epc ACTION DELETE A")
                   .ok());
}

TEST_F(CleansingTest, EngineRejectsDuplicateNamesAndUnknownTables) {
  EXPECT_TRUE(engine_->DefineRule(kDuplicateRule).ok());
  EXPECT_FALSE(engine_->DefineRule(kDuplicateRule).ok());  // same name
  EXPECT_FALSE(engine_
                   ->DefineRule("DEFINE r ON nosuch CLUSTER BY epc SEQUENCE BY "
                                "rtime AS (A, B) WHERE A.epc = B.epc "
                                "ACTION DELETE A")
                   .ok());
  // Unknown column in condition is rejected at definition time.
  EXPECT_FALSE(engine_
                   ->DefineRule("DEFINE r2 ON caseR CLUSTER BY epc SEQUENCE BY "
                                "rtime AS (A, B) WHERE A.nope = B.nope "
                                "ACTION DELETE A")
                   .ok());
}

TEST_F(CleansingTest, TemplatePersistedInRulesTable) {
  ASSERT_TRUE(engine_->DefineRule(kReaderRule).ok());
  auto res = ExecuteSql(db_, "SELECT name, template_sql FROM __rules");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 1u);
  const std::string& tmpl = res->rows[0][1].string_value();
  EXPECT_NE(tmpl.find("OVER (PARTITION BY epc ORDER BY rtime"), std::string::npos)
      << tmpl;
  EXPECT_NE(tmpl.find("RANGE BETWEEN 1 MICROSECONDS FOLLOWING"), std::string::npos)
      << tmpl;
}

TEST_F(CleansingTest, DuplicateRuleKeepsFirstRead) {
  // e1: locA@0, locA@2m (dup), locA@20m (not dup: >5m), locB@60m.
  AddRead(case_r_, "e1", Minutes(0), "r1", "locA");
  AddRead(case_r_, "e1", Minutes(2), "r2", "locA");
  AddRead(case_r_, "e1", Minutes(20), "r1", "locA");
  AddRead(case_r_, "e1", Minutes(60), "r1", "locB");
  auto rows = Clean({kDuplicateRule});
  ASSERT_EQ(rows.size(), 3u);
}

TEST_F(CleansingTest, DuplicateRuleBorderRowSurvives) {
  // A single read has no predecessor: the condition is unknown, DELETE
  // must keep it (the paper's NULL-handling requirement).
  AddRead(case_r_, "e1", Minutes(0), "r1", "locA");
  auto rows = Clean({kDuplicateRule});
  EXPECT_EQ(rows.size(), 1u);
}

TEST_F(CleansingTest, ReaderRuleDeletesTrailingWindow) {
  // Reads at 0m and 4m precede a readerX read at 8m within 10 minutes:
  // both deleted. The readerX read itself and a later read survive.
  AddRead(case_r_, "e1", Minutes(0), "r1", "locA");
  AddRead(case_r_, "e1", Minutes(4), "r2", "locB");
  AddRead(case_r_, "e1", Minutes(8), "readerX", "locC");
  AddRead(case_r_, "e1", Minutes(120), "r3", "locD");
  auto rows = Clean({kReaderRule});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][3].string_value(), "locC");
  EXPECT_EQ(rows[1][3].string_value(), "locD");
}

TEST_F(CleansingTest, ReaderRuleRespectsSequenceBoundaries) {
  // readerX read on e2 must not delete e1's reads.
  AddRead(case_r_, "e1", Minutes(0), "r1", "locA");
  AddRead(case_r_, "e2", Minutes(2), "readerX", "locB");
  auto rows = Clean({kReaderRule});
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(CleansingTest, ReplacingRuleModifiesLocation) {
  // Cross read at loc2 followed by locA within 20 minutes -> loc1.
  AddRead(case_r_, "e1", Minutes(0), "r1", "loc2");
  AddRead(case_r_, "e1", Minutes(10), "r2", "locA");
  // Control: loc2 NOT followed by locA in time stays loc2.
  AddRead(case_r_, "e2", Minutes(0), "r1", "loc2");
  AddRead(case_r_, "e2", Minutes(300), "r2", "locA");
  auto rows = Clean({kReplacingRule});
  ASSERT_EQ(rows.size(), 4u);
  int loc1_count = 0;
  int loc2_count = 0;
  for (const Row& r : rows) {
    if (r[3].string_value() == "loc1") ++loc1_count;
    if (r[3].string_value() == "loc2") ++loc2_count;
  }
  EXPECT_EQ(loc1_count, 1);
  EXPECT_EQ(loc2_count, 1);
}

TEST_F(CleansingTest, CycleRuleCollapsesAlternation) {
  // Section 4.3 Example 4: [X Y X Y X Y] -> [X Y].
  const char* locs[] = {"X", "Y", "X", "Y", "X", "Y"};
  for (int i = 0; i < 6; ++i) {
    AddRead(case_r_, "e1", Hours(i), "r1", locs[i]);
  }
  auto rows = Clean({kCycleRule});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][3].string_value(), "X");
  EXPECT_EQ(rows[0][1].timestamp_value(), Hours(0));  // first X
  EXPECT_EQ(rows[1][3].string_value(), "Y");
  EXPECT_EQ(rows[1][1].timestamp_value(), Hours(5));  // last Y
}

TEST_F(CleansingTest, CycleRuleLeavesStraightPathsAlone) {
  const char* locs[] = {"X", "Y", "Z", "W"};
  for (int i = 0; i < 4; ++i) {
    AddRead(case_r_, "e1", Hours(i), "r1", locs[i]);
  }
  auto rows = Clean({kCycleRule});
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(CleansingTest, MissingRuleCompensatesWithPalletRead) {
  // Pallet P1 contains case C1. Both travel L1 -> L2. The case read at L1
  // is missing; a pallet read exists at both sites; the case is read with
  // the pallet at L2. Cleansing must emit a compensating row for C1@L1.
  AddRead(pallet_r_, "P1", Hours(1), "r1", "L1");
  AddRead(pallet_r_, "P1", Hours(20), "r2", "L2");
  ASSERT_TRUE(parent_
                  ->Append({Value::String("C1"), Value::String("P1")})
                  .ok());
  // Case read at L2 only, 2 minutes after the pallet read.
  AddRead(case_r_, "C1", Hours(20) + Minutes(2), "r2", "L2");
  auto rows = Clean({kMissingRule1, kMissingRule2}, "epc, rtime, biz_loc, is_pallet");
  // Expected output: compensating pallet read at L1 (is_pallet=1) and the
  // real case read at L2 (is_pallet=0). The pallet read at L2 is dropped
  // because the case was seen there.
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][2].string_value(), "L1");
  EXPECT_EQ(rows[0][3].int64_value(), 1);
  EXPECT_EQ(rows[1][2].string_value(), "L2");
  EXPECT_EQ(rows[1][3].int64_value(), 0);
}

TEST_F(CleansingTest, MissingRuleDoesNotCompensateWithoutLaterSighting) {
  // Case never seen with the pallet again: possible theft, no compensation
  // (the "more confident" requirement of Example 5).
  AddRead(pallet_r_, "P1", Hours(1), "r1", "L1");
  AddRead(pallet_r_, "P1", Hours(20), "r2", "L2");
  ASSERT_TRUE(parent_
                  ->Append({Value::String("C1"), Value::String("P1")})
                  .ok());
  // No case reads at all for C1.
  auto rows = Clean({kMissingRule1, kMissingRule2}, "epc, rtime, biz_loc, is_pallet");
  EXPECT_EQ(rows.size(), 0u);
}

TEST_F(CleansingTest, RuleOrderingMattersSection44) {
  // Section 4.4: location sequence [X Y X]. Cycle-then-duplicate yields
  // [X] (the first X); duplicate-then-cycle yields [X X].
  AddRead(case_r_, "e1", Hours(0), "r1", "X");
  AddRead(case_r_, "e1", Hours(1), "r1", "Y");
  AddRead(case_r_, "e1", Hours(2), "r1", "X");
  const char* dup_no_time =
      "DEFINE dup ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE A.biz_loc = B.biz_loc ACTION DELETE B";
  {
    auto rows = Clean({kCycleRule, dup_no_time});
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][1].timestamp_value(), Hours(0));
  }
  // Fresh engine, reversed order.
  engine_ = std::make_unique<CleansingRuleEngine>(&db_);
  {
    auto rows = Clean({dup_no_time, kCycleRule});
    ASSERT_EQ(rows.size(), 2u);  // duplicate rule sees X,Y,X: nothing adjacent
  }
}

TEST_F(CleansingTest, ChainSharesOneSortAcrossRules) {
  // Multiple rules with the same CLUSTER BY / SEQUENCE BY must plan with a
  // single Sort (Section 6.3: "only the first rule incurs the sorting
  // overhead").
  AddRead(case_r_, "e1", Minutes(0), "r1", "locA");
  AddRead(case_r_, "e1", Minutes(2), "r2", "locA");
  ASSERT_TRUE(engine_->DefineRule(kDuplicateRule).ok());
  ASSERT_TRUE(engine_->DefineRule(kReaderRule).ok());
  ASSERT_TRUE(engine_->DefineRule(kCycleRule).ok());
  std::vector<const CleansingRule*> rules;
  for (const CleansingRule& r : engine_->rules()) rules.push_back(&r);
  auto chain = BuildCleansingChain(rules, db_, "__input",
                                   case_r_->schema().columns());
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  std::string sql = "WITH __input AS (SELECT * FROM caseR)";
  for (const auto& [name, body] : chain->with_clauses) {
    sql += ", " + name + " AS (" + body + ")";
  }
  sql += " SELECT * FROM " + chain->output_name;
  auto res = ExecuteSql(db_, sql);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  size_t sort_count = 0;
  size_t pos = 0;
  while ((pos = res->explain.find("Sort", pos)) != std::string::npos) {
    ++sort_count;
    pos += 4;
  }
  EXPECT_EQ(sort_count, 1u) << res->explain;
}

}  // namespace
}  // namespace rfid
