// Additional planner coverage: nested CTEs, union typing, ordering
// interactions, multi-key joins at the operator level, window misuse
// errors, and EXPLAIN content.
#include <gtest/gtest.h>

#include "common/time_util.h"
#include "exec/hash_join.h"
#include "exec/scan.h"
#include "plan/planner.h"

namespace rfid {
namespace {

class PlannerEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema reads;
    reads.AddColumn("epc", DataType::kString);
    reads.AddColumn("rtime", DataType::kTimestamp);
    reads.AddColumn("reader", DataType::kString);
    reads.AddColumn("biz_loc", DataType::kString);
    reads_ = db_.CreateTable("caseR", reads).value();
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(reads_
                      ->Append({Value::String("e" + std::to_string(i % 4)),
                                Value::Timestamp(Minutes(i * 7)),
                                Value::String("r" + std::to_string(i % 3)),
                                Value::String("loc" + std::to_string(i % 5))})
                      .ok());
    }
    ASSERT_TRUE(reads_->BuildIndex("rtime").ok());
    reads_->ComputeStats();
  }

  QueryResult MustRun(const std::string& sql) {
    auto r = ExecuteSql(db_, sql);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  Database db_;
  Table* reads_ = nullptr;
};

TEST_F(PlannerEdgeTest, NestedWithClauses) {
  QueryResult res = MustRun(
      "WITH a AS (SELECT epc, rtime FROM caseR), "
      "b AS (SELECT * FROM a WHERE rtime > TIMESTAMP 0), "
      "c AS (WITH inner1 AS (SELECT epc FROM b) SELECT * FROM inner1) "
      "SELECT count(*) FROM c");
  ASSERT_EQ(res.rows.size(), 1u);
  EXPECT_EQ(res.rows[0][0].int64_value(), 19);  // one read at rtime 0
}

TEST_F(PlannerEdgeTest, WithNameShadowsTable) {
  // A WITH clause named caseR shadows the base table within the query.
  QueryResult res = MustRun(
      "WITH caseR AS (SELECT * FROM caseR WHERE epc = 'e1') "
      "SELECT count(*) FROM caseR");
  ASSERT_EQ(res.rows.size(), 1u);
  EXPECT_EQ(res.rows[0][0].int64_value(), 5);
}

TEST_F(PlannerEdgeTest, UnionAllArityMismatchRejected) {
  EXPECT_FALSE(ExecuteSql(db_, "SELECT epc FROM caseR UNION ALL "
                               "SELECT epc, rtime FROM caseR")
                   .ok());
}

TEST_F(PlannerEdgeTest, UnionAllThenAggregate) {
  QueryResult res = MustRun(
      "WITH u AS (SELECT epc FROM caseR UNION ALL SELECT reader FROM caseR) "
      "SELECT count(*) FROM u");
  EXPECT_EQ(res.rows[0][0].int64_value(), 40);
}

TEST_F(PlannerEdgeTest, OrderByDescWithLimitlessOutput) {
  QueryResult res = MustRun(
      "SELECT epc, rtime FROM caseR WHERE epc = 'e0' ORDER BY rtime DESC");
  ASSERT_EQ(res.rows.size(), 5u);
  for (size_t i = 1; i < res.rows.size(); ++i) {
    EXPECT_GE(res.rows[i - 1][1].timestamp_value(),
              res.rows[i][1].timestamp_value());
  }
}

TEST_F(PlannerEdgeTest, DistinctPreservesFirstSeenOrder) {
  QueryResult res = MustRun("SELECT DISTINCT epc FROM caseR");
  ASSERT_EQ(res.rows.size(), 4u);
  EXPECT_EQ(res.rows[0][0].string_value(), "e0");  // table order
}

TEST_F(PlannerEdgeTest, WindowOverJoinProbeOrderSharing) {
  // Index scan provides rtime order; the window needs (epc, rtime), so a
  // sort is required — but exactly one, even with a join in between.
  Schema dim;
  dim.AddColumn("gln", DataType::kString);
  Table* locs = db_.CreateTable("locs", dim).value();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(locs->Append({Value::String("loc" + std::to_string(i))}).ok());
  }
  locs->ComputeStats();
  QueryResult res = MustRun(
      "SELECT c.epc, max(c.rtime) OVER (PARTITION BY c.epc ORDER BY c.rtime "
      "ROWS BETWEEN 1 PRECEDING AND 1 PRECEDING) AS prev "
      "FROM caseR c, locs l WHERE c.biz_loc = l.gln");
  EXPECT_EQ(res.rows.size(), 20u);
  size_t first = res.explain.find("Sort");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(res.explain.find("Sort", first + 4), std::string::npos)
      << res.explain;
}

TEST_F(PlannerEdgeTest, TwoIncompatibleWindowsTwoSorts) {
  QueryResult res = MustRun(
      "SELECT "
      "max(rtime) OVER (PARTITION BY epc ORDER BY rtime "
      "  ROWS BETWEEN 1 PRECEDING AND 1 PRECEDING) AS by_epc, "
      "max(rtime) OVER (PARTITION BY reader ORDER BY rtime "
      "  ROWS BETWEEN 1 PRECEDING AND 1 PRECEDING) AS by_reader "
      "FROM caseR");
  EXPECT_EQ(res.rows.size(), 20u);
  size_t first = res.explain.find("Sort");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(res.explain.find("Sort", first + 4), std::string::npos)
      << res.explain;
}

TEST_F(PlannerEdgeTest, WindowInWhereRejected) {
  EXPECT_FALSE(ExecuteSql(db_,
                          "SELECT epc FROM caseR WHERE max(rtime) OVER "
                          "(PARTITION BY epc) IS NULL")
                   .ok());
}

TEST_F(PlannerEdgeTest, AggregateOfNonGroupColumnRejected) {
  EXPECT_FALSE(
      ExecuteSql(db_, "SELECT reader, count(*) FROM caseR GROUP BY epc").ok());
}

TEST_F(PlannerEdgeTest, ExpressionGroupKeyMatchesItem) {
  QueryResult res =
      MustRun("SELECT rtime + 1 minutes, count(*) FROM caseR "
              "GROUP BY rtime + 1 minutes");
  EXPECT_EQ(res.rows.size(), 20u);
}

TEST_F(PlannerEdgeTest, EmptyRangeIndexScan) {
  QueryResult res = MustRun(
      "SELECT * FROM caseR WHERE rtime > TIMESTAMP " +
      std::to_string(Hours(1000)));
  EXPECT_EQ(res.rows.size(), 0u);
}

TEST_F(PlannerEdgeTest, ContradictoryBoundsYieldNothing) {
  QueryResult res = MustRun(
      "SELECT * FROM caseR WHERE rtime > TIMESTAMP " +
      std::to_string(Minutes(50)) + " AND rtime < TIMESTAMP " +
      std::to_string(Minutes(10)));
  EXPECT_EQ(res.rows.size(), 0u);
}

TEST_F(PlannerEdgeTest, MultiKeyHashJoinOperator) {
  // The operator supports composite keys even though the planner only
  // emits single-key joins today.
  Schema other;
  other.AddColumn("epc", DataType::kString);
  other.AddColumn("reader", DataType::kString);
  Table* t = db_.CreateTable("pairs", other).value();
  ASSERT_TRUE(t->Append({Value::String("e0"), Value::String("r0")}).ok());
  ASSERT_TRUE(t->Append({Value::String("e1"), Value::String("r1")}).ok());

  auto probe = std::make_unique<TableScanOp>(reads_, "c");
  auto build = std::make_unique<TableScanOp>(t, "p");
  HashJoinOp join(std::move(probe), std::move(build),
                  std::vector<size_t>{0, 2}, std::vector<size_t>{0, 1},
                  JoinType::kInner);
  auto rows = CollectRows(&join);
  ASSERT_TRUE(rows.ok());
  for (const Row& r : *rows) {
    // Output: 4 probe columns then 2 build columns.
    EXPECT_EQ(r[0].string_value(), r[4].string_value());
    EXPECT_EQ(r[2].string_value(), r[5].string_value());
  }
  EXPECT_GT(rows->size(), 0u);
}

TEST_F(PlannerEdgeTest, SemiJoinInsideCte) {
  QueryResult res = MustRun(
      "WITH sel AS (SELECT * FROM caseR WHERE epc IN "
      "(SELECT epc FROM caseR WHERE reader = 'r2')) "
      "SELECT count(*) FROM sel");
  ASSERT_EQ(res.rows.size(), 1u);
  EXPECT_GT(res.rows[0][0].int64_value(), 0);
}

TEST_F(PlannerEdgeTest, InSubqueryUnderOrMaterialized) {
  QueryResult res = MustRun(
      "SELECT count(*) FROM caseR WHERE epc = 'e0' OR epc IN "
      "(SELECT epc FROM caseR WHERE reader = 'r2')");
  ASSERT_EQ(res.rows.size(), 1u);
  EXPECT_GE(res.rows[0][0].int64_value(), 5);
}

}  // namespace
}  // namespace rfid
