// Property tests for the SQL/OLAP window operator: for random partitioned
// sequences and random frames, WindowOp must agree with a brute-force
// reference implementation computed directly from the definition.
#include <gtest/gtest.h>

#include <optional>

#include "common/random.h"
#include "common/time_util.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "exec/window.h"
#include "storage/catalog.h"

namespace rfid {
namespace {

struct Config {
  uint64_t seed;
  FrameUnit unit;
  // Deltas as in FrameBound (rows or micros).
  int64_t start_delta;
  bool start_unbounded;
  int64_t end_delta;
  bool end_unbounded;
  AggFunc func;
};

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  const Config& c = info.param;
  std::string name = c.unit == FrameUnit::kRows ? "rows" : "range";
  name += "_" + std::string(AggFuncName(c.func));
  name += c.start_unbounded ? "_ub" : (c.start_delta < 0 ? "_p" : "_f") +
                                          std::to_string(std::abs(c.start_delta));
  name += c.end_unbounded ? "_ub" : (c.end_delta < 0 ? "_p" : "_f") +
                                        std::to_string(std::abs(c.end_delta));
  name += "_s" + std::to_string(c.seed);
  return name;
}

class WindowPropertyTest : public ::testing::TestWithParam<Config> {};

TEST_P(WindowPropertyTest, MatchesBruteForce) {
  const Config& cfg = GetParam();
  Random rng(cfg.seed);

  // Random data: a handful of partitions with strictly increasing,
  // irregular timestamps and small integer payloads (some NULL).
  Schema schema;
  schema.AddColumn("part", DataType::kString);
  schema.AddColumn("ts", DataType::kTimestamp);
  schema.AddColumn("val", DataType::kInt64);
  Database db;
  Table* table = db.CreateTable("t", schema).value();
  int num_parts = 1 + static_cast<int>(rng.Uniform(4));
  for (int p = 0; p < num_parts; ++p) {
    int64_t t = static_cast<int64_t>(rng.Uniform(1000));
    int rows = 1 + static_cast<int>(rng.Uniform(25));
    for (int i = 0; i < rows; ++i) {
      Value val = rng.Bernoulli(0.15)
                      ? Value::Null()
                      : Value::Int64(static_cast<int64_t>(rng.Uniform(50)));
      ASSERT_TRUE(table
                      ->Append({Value::String("p" + std::to_string(p)),
                                Value::Timestamp(t), val})
                      .ok());
      t += 1 + static_cast<int64_t>(rng.Uniform(200));
    }
  }

  WindowAggSpec spec;
  spec.func = cfg.func;
  RowDesc desc = RowDesc::FromSchema(schema, "t");
  if (cfg.func == AggFunc::kCount && cfg.seed % 2 == 0) {
    spec.arg = nullptr;  // COUNT(*)
  } else {
    spec.arg = BindExpr(MakeColumnRef("t", "val"), desc).value();
  }
  spec.frame.unit = cfg.unit;
  spec.frame.start = {cfg.start_unbounded, cfg.start_delta};
  spec.frame.end = {cfg.end_unbounded, cfg.end_delta};
  spec.output_name = "w";
  spec.result_type =
      cfg.func == AggFunc::kCount
          ? DataType::kInt64
          : (cfg.func == AggFunc::kAvg ? DataType::kDouble : DataType::kInt64);

  auto scan = std::make_unique<TableScanOp>(table, "t");
  auto sort = std::make_unique<SortOp>(
      std::move(scan), std::vector<SlotSortKey>{{0, true}, {1, true}});
  WindowOp window(std::move(sort), {0}, {{1, true}}, {spec});
  auto rows_or = CollectRows(&window);
  ASSERT_TRUE(rows_or.ok()) << rows_or.status().ToString();
  const std::vector<Row>& rows = *rows_or;

  // Brute force over the sorted base rows.
  std::vector<Row> sorted;
  for (size_t i = 0; i < table->num_rows(); ++i) sorted.push_back(table->row(i));
  std::stable_sort(sorted.begin(), sorted.end(), [](const Row& a, const Row& b) {
    int c = a[0].Compare(b[0]);
    if (c != 0) return c < 0;
    return a[1].Compare(b[1]) < 0;
  });
  ASSERT_EQ(sorted.size(), rows.size());

  for (size_t i = 0; i < sorted.size(); ++i) {
    // Frame membership for row j relative to row i.
    int64_t count = 0;
    std::optional<int64_t> sum;
    std::optional<int64_t> best;
    // Find partition bounds.
    size_t pbegin = i;
    while (pbegin > 0 && sorted[pbegin - 1][0] == sorted[i][0]) --pbegin;
    size_t pend = i + 1;
    while (pend < sorted.size() && sorted[pend][0] == sorted[i][0]) ++pend;
    for (size_t j = pbegin; j < pend; ++j) {
      bool in_frame;
      if (cfg.unit == FrameUnit::kRows) {
        int64_t off = static_cast<int64_t>(j) - static_cast<int64_t>(i);
        bool after_start =
            cfg.start_unbounded || off >= cfg.start_delta;
        bool before_end = cfg.end_unbounded || off <= cfg.end_delta;
        in_frame = after_start && before_end;
      } else {
        int64_t diff = sorted[j][1].timestamp_value() -
                       sorted[i][1].timestamp_value();
        bool after_start = cfg.start_unbounded || diff >= cfg.start_delta;
        bool before_end = cfg.end_unbounded || diff <= cfg.end_delta;
        in_frame = after_start && before_end;
      }
      if (!in_frame) continue;
      if (spec.arg == nullptr) {
        ++count;
        continue;
      }
      const Value& v = sorted[j][2];
      if (v.is_null()) continue;
      ++count;
      sum = sum.value_or(0) + v.int64_value();
      if (cfg.func == AggFunc::kMin) {
        best = best.has_value() ? std::min(*best, v.int64_value())
                                : v.int64_value();
      } else if (cfg.func == AggFunc::kMax) {
        best = best.has_value() ? std::max(*best, v.int64_value())
                                : v.int64_value();
      }
    }
    const Value& got = rows[i][3];
    switch (cfg.func) {
      case AggFunc::kCount:
        ASSERT_EQ(got.int64_value(), count) << "row " << i;
        break;
      case AggFunc::kSum:
        if (count == 0) {
          ASSERT_TRUE(got.is_null()) << "row " << i;
        } else {
          ASSERT_EQ(got.int64_value(), *sum) << "row " << i;
        }
        break;
      case AggFunc::kAvg:
        if (count == 0) {
          ASSERT_TRUE(got.is_null()) << "row " << i;
        } else {
          ASSERT_DOUBLE_EQ(got.double_value(),
                           static_cast<double>(*sum) / static_cast<double>(count))
              << "row " << i;
        }
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        if (!best.has_value()) {
          ASSERT_TRUE(got.is_null()) << "row " << i;
        } else {
          ASSERT_EQ(got.int64_value(), *best) << "row " << i;
        }
        break;
    }
  }
}

std::vector<Config> MakeConfigs() {
  std::vector<Config> configs;
  uint64_t seed = 1;
  // ROWS frames: the shapes rules compile into plus general ones.
  struct RowsFrame {
    int64_t s;
    bool su;
    int64_t e;
    bool eu;
  } rows_frames[] = {
      {-1, false, -1, false},  // 1 preceding .. 1 preceding (lag)
      {1, false, 1, false},    // lead
      {-2, false, 2, false},   // around
      {0, true, 0, false},     // unbounded preceding .. current
      {0, false, 0, true},     // current .. unbounded following
      {-3, false, -1, false},  // window strictly before
      {2, false, 1, false},    // empty frame (start > end)
  };
  for (const auto& f : rows_frames) {
    for (AggFunc func : {AggFunc::kCount, AggFunc::kMax, AggFunc::kSum}) {
      configs.push_back({seed++, FrameUnit::kRows, f.s, f.su, f.e, f.eu, func});
    }
  }
  // RANGE frames (micros offsets against the irregular ts column).
  struct RangeFrame {
    int64_t s;
    bool su;
    int64_t e;
    bool eu;
  } range_frames[] = {
      {1, false, 300, false},     // trailing window (reader rule shape)
      {-300, false, -1, false},   // leading window
      {-100, false, 100, false},  // symmetric
      {1, false, 0, true},        // strictly-after .. unbounded
      {0, true, -1, false},       // unbounded .. strictly-before
  };
  for (const auto& f : range_frames) {
    for (AggFunc func : {AggFunc::kCount, AggFunc::kMin, AggFunc::kAvg}) {
      configs.push_back({seed++, FrameUnit::kRange, f.s, f.su, f.e, f.eu, func});
    }
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(Frames, WindowPropertyTest,
                         ::testing::ValuesIn(MakeConfigs()), ConfigName);

}  // namespace
}  // namespace rfid
