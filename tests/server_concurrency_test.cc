// Concurrency tests for the SQL server front end: many client threads
// with divergent rewrite strategies against a live-ingesting server,
// snapshot-pinned repeatable reads, plan-cache sharing across sessions,
// and shutdown under load. Run under TSan in check.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "rfidgen/workload.h"
#include "server/client.h"
#include "server/server.h"

namespace rfid {
namespace {

using server::CacheOutcome;
using server::Client;
using server::Server;
using server::ServerOptions;

std::vector<std::string> Canonical(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  for (const Row& r : rows) {
    std::string s;
    for (const Value& v : r) s += v.ToString() + "|";
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ServerConcurrencyTest, SixteenSessionsThreeStrategiesAgainstLiveIngest) {
  ServerOptions options;
  options.admission.max_concurrent = 8;
  options.admission.queue_depth = 64;
  options.admission.queue_wait_micros = 30'000'000;
  auto srv = Server::Start(options);
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();
  Server* server = srv->get();

  // Seed the stream, then keep feeding while the clients hammer away.
  auto feeder_client = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(feeder_client.ok()) << feeder_client.status().ToString();
  ASSERT_TRUE((*feeder_client)->Command(".feed 2 64").ok());

  std::atomic<bool> stop_feeding{false};
  std::thread feeder([&] {
    while (!stop_feeding.load(std::memory_order_acquire)) {
      auto fed = (*feeder_client)->Command(".feed 1 32");
      if (!fed.ok()) break;  // stream exhausted is fine
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  constexpr int kSessions = 16;
  const char* kStrategies[] = {"naive", "expanded", "joinback"};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> queries_ok{0};
  std::vector<std::thread> workers;
  workers.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    workers.emplace_back([&, i] {
      auto client = Client::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      if (!(*client)->Set("strategy", kStrategies[i % 3]).ok()) {
        ++failures;
        return;
      }
      for (const std::string& def : workload::StandardRuleDefinitions(1)) {
        if (!(*client)->Command(".rule " + def).ok()) {
          ++failures;
          return;
        }
      }
      for (int q = 0; q < 8; ++q) {
        auto res = (*client)->Query("SELECT count(*) FROM caseR");
        if (res.ok()) {
          ++queries_ok;
        } else if (res.status().code() != StatusCode::kResourceExhausted) {
          // Admission pushback is a legal answer under load; anything
          // else (crash, hang, protocol error) is not.
          ADD_FAILURE() << res.status().ToString();
          ++failures;
        }
      }
      (void)(*client)->Quit();
    });
  }
  for (auto& w : workers) w.join();
  stop_feeding.store(true, std::memory_order_release);
  feeder.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(queries_ok.load(), 0u);

  // Quiesced: every strategy must now agree bit-for-bit on the same
  // snapshot, across sessions.
  auto naive = Client::Connect("127.0.0.1", server->port());
  auto expanded = Client::Connect("127.0.0.1", server->port());
  auto joinback = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(expanded.ok());
  ASSERT_TRUE(joinback.ok());
  std::vector<std::pair<Client*, const char*>> clients = {
      {naive->get(), "naive"},
      {expanded->get(), "expanded"},
      {joinback->get(), "joinback"},
  };
  const std::string sql = "SELECT epc, biz_loc FROM caseR";
  std::vector<std::vector<std::string>> answers;
  for (auto& [client, strategy] : clients) {
    ASSERT_TRUE(client->Set("strategy", strategy).ok());
    for (const std::string& def : workload::StandardRuleDefinitions(1)) {
      ASSERT_TRUE(client->Command(".rule " + def).ok());
    }
    auto res = client->Query(sql);
    ASSERT_TRUE(res.ok()) << strategy << ": " << res.status().ToString();
    answers.push_back(Canonical(res->rows));
  }
  EXPECT_EQ(answers[0], answers[1]) << "expanded diverged from naive";
  EXPECT_EQ(answers[0], answers[2]) << "join-back diverged from naive";

  server->Shutdown();
}

TEST(ServerConcurrencyTest, HeldSnapshotGivesRepeatableReadsUnderIngest) {
  auto srv = Server::Start(ServerOptions{});
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();
  Server* server = srv->get();
  auto client = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Command(".feed 3 64").ok());
  ASSERT_TRUE((*client)->Set("snapshot", "hold").ok());
  auto before = (*client)->Query("SELECT count(*) FROM caseR");
  ASSERT_TRUE(before.ok());

  // More batches land, but the held session must not see them.
  auto feeder = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(feeder.ok());
  ASSERT_TRUE((*feeder)->Command(".feed 3 64").ok());

  auto during = (*client)->Query("SELECT count(*) FROM caseR");
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(Canonical(before->rows), Canonical(during->rows));

  ASSERT_TRUE((*client)->Set("snapshot", "latest").ok());
  auto after = (*client)->Query("SELECT count(*) FROM caseR");
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->rows[0][0].int64_value(), before->rows[0][0].int64_value());
  server->Shutdown();
}

TEST(ServerConcurrencyTest, PlanCacheSharedAcrossIdenticalCatalogs) {
  auto srv = Server::Start(ServerOptions{});
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();
  Server* server = srv->get();
  auto a = Client::Connect("127.0.0.1", server->port());
  auto b = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*a)->Command(".gen 4 10").ok());
  for (const std::string& def : workload::StandardRuleDefinitions(1)) {
    ASSERT_TRUE((*a)->Command(".rule " + def).ok());
    ASSERT_TRUE((*b)->Command(".rule " + def).ok());
  }
  const std::string sql = "SELECT count(*) FROM caseR";
  auto first = (*a)->Query(sql);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->cache, CacheOutcome::kMiss);
  // Identical rule catalogs produce identical fingerprints: session B
  // rides session A's cached rewrite.
  auto second = (*b)->Query(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->cache, CacheOutcome::kHit);
  server->Shutdown();
}

TEST(ServerConcurrencyTest, ShutdownUnderConcurrentLoadIsClean) {
  ServerOptions options;
  options.admission.max_concurrent = 4;
  auto srv = Server::Start(options);
  ASSERT_TRUE(srv.ok()) << srv.status().ToString();
  Server* server = srv->get();
  auto seed = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(seed.ok());
  ASSERT_TRUE((*seed)->Command(".gen 4 10").ok());

  std::atomic<int> protocol_failures{0};
  std::vector<std::thread> workers;
  for (int i = 0; i < 8; ++i) {
    workers.emplace_back([&] {
      auto client = Client::Connect("127.0.0.1", server->port());
      if (!client.ok()) return;  // refused during drain: expected
      while (true) {
        auto res = (*client)->Query("SELECT count(*) FROM caseR");
        if (res.ok()) continue;
        const StatusCode code = res.status().code();
        // Every terminal outcome must be structured: cancellation or
        // pushback from the drain, or the orderly hangup marker.
        if (code != StatusCode::kCancelled &&
            code != StatusCode::kResourceExhausted &&
            code != StatusCode::kNotFound && code != StatusCode::kInternal) {
          ++protocol_failures;
        }
        return;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  server->Shutdown();
  for (auto& w : workers) w.join();
  EXPECT_EQ(protocol_failures.load(), 0);
  EXPECT_TRUE(server->final_flush_status().ok());
}

}  // namespace
}  // namespace rfid
