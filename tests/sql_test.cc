// Unit tests for the SQL lexer, parser, and renderer.
#include <gtest/gtest.h>

#include "common/time_util.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/render.h"

namespace rfid {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a.b, 42, 4.5, 'x''y' <= <> -- comment\n =");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  // SELECT a . b , 42 , 4.5 , 'x''y' <= <> = <end>  (comment skipped)
  ASSERT_EQ(t.size(), 14u);
  EXPECT_EQ(t[0].type, TokenType::kIdentifier);
  EXPECT_EQ(t[0].text, "SELECT");
  EXPECT_EQ(t[2].text, ".");
  EXPECT_EQ(t[5].int_value, 42);
  EXPECT_EQ(t[7].double_value, 4.5);
  EXPECT_EQ(t[9].type, TokenType::kString);
  EXPECT_EQ(t[9].text, "x'y");
  EXPECT_EQ(t[10].text, "<=");
  EXPECT_EQ(t[11].text, "<>");
  EXPECT_EQ(t[12].text, "=");
  EXPECT_EQ(t[13].type, TokenType::kEnd);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("select 'unterminated").ok());
  EXPECT_FALSE(Tokenize("select @").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto r = ParseSql("select * from caseR where rtime <= TIMESTAMP 500");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStatement& s = *r.value();
  ASSERT_EQ(s.cores.size(), 1u);
  EXPECT_TRUE(s.cores[0].items[0].is_star);
  ASSERT_EQ(s.cores[0].from.size(), 1u);
  EXPECT_EQ(s.cores[0].from[0].table_name, "caseR");
  EXPECT_EQ(s.cores[0].from[0].alias, "caseR");
  ASSERT_NE(s.cores[0].where, nullptr);
  EXPECT_EQ(ExprToSql(s.cores[0].where), "rtime <= TIMESTAMP 500");
}

TEST(ParserTest, AliasesImplicitAndExplicit) {
  auto r = ParseSql("select c.epc x, l.gln as y from caseR c, locs as l");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectCore& core = r.value()->cores[0];
  EXPECT_EQ(core.items[0].alias, "x");
  EXPECT_EQ(core.items[1].alias, "y");
  EXPECT_EQ(core.from[0].alias, "c");
  EXPECT_EQ(core.from[1].alias, "l");
}

TEST(ParserTest, IntervalLiterals) {
  auto r = ParseExpression("b.rtime - a.rtime < 5 mins");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(ExprToSql(r.value()), "b.rtime - a.rtime < 5 MINUTES");
  r = ParseExpression("x < interval 2 hours");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ExprToSql(r.value()), "x < 2 HOURS");
}

TEST(ParserTest, TimestampLiterals) {
  auto r = ParseExpression("rtime >= TIMESTAMP '1970-01-01 00:01:00'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ExprPtr& e = r.value();
  EXPECT_EQ(e->children[1]->value.timestamp_value(), Minutes(1));
  EXPECT_FALSE(ParseExpression("rtime >= TIMESTAMP 'bogus'").ok());
}

TEST(ParserTest, PrecedenceAndParens) {
  auto r = ParseExpression("a = 1 or b = 2 and c = 3");
  ASSERT_TRUE(r.ok());
  // AND binds tighter than OR.
  EXPECT_EQ(ExprToSql(r.value()), "a = 1 OR b = 2 AND c = 3");
  EXPECT_EQ(r.value()->op, BinaryOp::kOr);

  r = ParseExpression("(a = 1 or b = 2) and c = 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->op, BinaryOp::kAnd);
}

TEST(ParserTest, CaseInAndBetween) {
  auto r = ParseExpression(
      "case when reader = 'readerX' then 1 else 0 end");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value()->kind, ExprKind::kCase);

  r = ParseExpression("x in (1, 2, 3)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->kind, ExprKind::kInList);

  r = ParseExpression("x not in (1, 2)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->kind, ExprKind::kNot);

  r = ParseExpression("x between 1 and 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ExprToSql(r.value()), "x >= 1 AND x <= 3");
}

TEST(ParserTest, InSubquery) {
  auto r = ParseSql(
      "select * from caseR where epc in (select epc from caseR where rtime > "
      "TIMESTAMP 5)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ExprPtr& w = r.value()->cores[0].where;
  ASSERT_EQ(w->kind, ExprKind::kInSubquery);
  ASSERT_NE(w->subquery, nullptr);
  EXPECT_EQ(w->subquery->cores[0].from[0].table_name, "caseR");
}

TEST(ParserTest, WindowFunctionFull) {
  auto r = ParseSql(
      "select max(biz_loc) over (partition by epc order by rtime asc "
      "rows between 1 preceding and 1 preceding) as prev_loc from caseR");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ExprPtr& e = r.value()->cores[0].items[0].expr;
  ASSERT_EQ(e->kind, ExprKind::kFuncCall);
  ASSERT_TRUE(e->window.has_value());
  EXPECT_EQ(e->window->partition_by.size(), 1u);
  EXPECT_EQ(e->window->order_by.size(), 1u);
  ASSERT_TRUE(e->window->has_frame);
  EXPECT_EQ(e->window->frame.unit, FrameUnit::kRows);
  EXPECT_EQ(e->window->frame.start.delta, -1);
  EXPECT_EQ(e->window->frame.end.delta, -1);
}

TEST(ParserTest, WindowRangeFrame) {
  auto r = ParseSql(
      "select max(x) over (partition by epc order by rtime "
      "range between 1 microseconds following and 10 minutes following) "
      "from caseR");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& f = r.value()->cores[0].items[0].expr->window->frame;
  EXPECT_EQ(f.unit, FrameUnit::kRange);
  EXPECT_EQ(f.start.delta, 1);
  EXPECT_EQ(f.end.delta, Minutes(10));
}

TEST(ParserTest, WindowShorthandRowsPreceding) {
  auto r = ParseSql("select max(x) over (rows 1 preceding) from t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& f = r.value()->cores[0].items[0].expr->window->frame;
  EXPECT_EQ(f.start.delta, -1);
  EXPECT_EQ(f.end.delta, 0);  // CURRENT ROW
}

TEST(ParserTest, WithClausesAndUnionAll) {
  auto r = ParseSql(
      "with v1 as (select * from caseR), "
      "v2 as (select * from v1 union all select * from caseR) "
      "select count(*) from v2 group by epc");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStatement& s = *r.value();
  ASSERT_EQ(s.with.size(), 2u);
  EXPECT_EQ(s.with[1].body->cores.size(), 2u);
  EXPECT_EQ(s.cores[0].group_by.size(), 1u);
}

TEST(ParserTest, CountDistinctAndStar) {
  auto r = ParseSql("select count(distinct reader), count(*) from caseR");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& items = r.value()->cores[0].items;
  EXPECT_TRUE(items[0].expr->distinct);
  EXPECT_EQ(items[1].expr->children[0]->kind, ExprKind::kStar);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSql("select from t").ok());
  EXPECT_FALSE(ParseSql("select * t").ok());
  EXPECT_FALSE(ParseSql("select * from t where").ok());
  EXPECT_FALSE(ParseSql("select * from t extra_garbage huh zz").ok());
  EXPECT_FALSE(ParseSql("with v as select * from t) select * from v").ok());
  EXPECT_FALSE(ParseExpression("case end").ok());
}

TEST(RenderTest, RoundTrip) {
  const char* queries[] = {
      "SELECT * FROM caseR WHERE rtime <= TIMESTAMP 100",
      "SELECT c.epc, count(*) AS n FROM caseR c, locs l WHERE c.biz_loc = "
      "l.gln AND l.site = 'dc1' GROUP BY c.epc",
      "WITH v1 AS (SELECT epc, rtime FROM caseR) SELECT * FROM v1 WHERE "
      "rtime > TIMESTAMP 5",
      "SELECT epc FROM caseR UNION ALL SELECT epc FROM palletR",
      "SELECT * FROM caseR WHERE epc IN (SELECT epc FROM caseR WHERE rtime > "
      "TIMESTAMP 7)",
  };
  for (const char* q : queries) {
    auto parsed = ParseSql(q);
    ASSERT_TRUE(parsed.ok()) << q << ": " << parsed.status().ToString();
    std::string rendered = StatementToSql(*parsed.value());
    auto reparsed = ParseSql(rendered);
    ASSERT_TRUE(reparsed.ok()) << rendered << ": " << reparsed.status().ToString();
    EXPECT_EQ(rendered, StatementToSql(*reparsed.value())) << q;
  }
}

TEST(RenderTest, WindowRoundTrip) {
  const char* q =
      "SELECT MAX(biz_loc) OVER (PARTITION BY epc ORDER BY rtime ASC ROWS "
      "BETWEEN 1 PRECEDING AND 1 PRECEDING) AS prev_loc FROM caseR";
  auto parsed = ParseSql(q);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::string rendered = StatementToSql(*parsed.value());
  auto reparsed = ParseSql(rendered);
  ASSERT_TRUE(reparsed.ok()) << rendered;
  EXPECT_EQ(rendered, StatementToSql(*reparsed.value()));
}

TEST(RenderTest, SubqueryRendered) {
  auto parsed = ParseSql(
      "select * from caseR where epc in (select epc from caseR where rtime > "
      "TIMESTAMP 7)");
  ASSERT_TRUE(parsed.ok());
  std::string rendered = StatementToSql(*parsed.value());
  EXPECT_NE(rendered.find("IN (SELECT epc FROM caseR"), std::string::npos)
      << rendered;
}

TEST(CloneTest, StatementDeepCopy) {
  auto parsed = ParseSql(
      "with v as (select * from t) select a, count(*) from v where a > 1 "
      "group by a order by a desc");
  ASSERT_TRUE(parsed.ok());
  StatementPtr clone = CloneStatement(parsed.value());
  // Mutating the clone must not affect the original.
  clone->cores[0].where = nullptr;
  clone->with.clear();
  EXPECT_NE(parsed.value()->cores[0].where, nullptr);
  EXPECT_EQ(parsed.value()->with.size(), 1u);
}

}  // namespace
}  // namespace rfid
