// Tests for RFIDGen and the anomaly injector: schema/shape invariants of
// Section 6.1 and, crucially, that each injected anomaly type is removed
// by its cleansing rule (injection is the inverse of cleansing).
#include <gtest/gtest.h>

#include "cleansing/chain.h"
#include "common/string_util.h"
#include "common/time_util.h"
#include "plan/planner.h"
#include "rfidgen/anomaly.h"

namespace rfid {
namespace {

using rfidgen::AnomalyOptions;
using rfidgen::AnomalyStats;
using rfidgen::GeneratedStats;
using rfidgen::GeneratorOptions;

GeneratorOptions SmallOptions() {
  GeneratorOptions opt;
  opt.num_pallets = 6;
  opt.min_cases_per_pallet = 3;
  opt.max_cases_per_pallet = 6;
  opt.reads_per_site = 4;
  opt.num_stores = 40;
  opt.num_warehouses = 10;
  opt.num_dcs = 3;
  opt.locations_per_site = 8;
  return opt;
}

class RfidGenTest : public ::testing::Test {
 protected:
  void Generate(const GeneratorOptions& opt) {
    auto r = rfidgen::Generate(opt, &db_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    stats_ = r.value();
  }

  int64_t Count(const std::string& sql) {
    auto res = ExecuteSql(db_, sql);
    EXPECT_TRUE(res.ok()) << sql << " -> " << res.status().ToString();
    if (!res.ok() || res->rows.empty()) return -1;
    return res->rows[0][0].int64_value();
  }

  Database db_;
  GeneratedStats stats_;
};

TEST_F(RfidGenTest, TablesAndCardinalities) {
  GeneratorOptions opt = SmallOptions();
  Generate(opt);
  for (const char* t : {"caseR", "palletR", "parent", "epc_info", "product",
                        "locs", "steps"}) {
    EXPECT_NE(db_.GetTable(t), nullptr) << t;
  }
  // locations: (3 + 10 + 40) sites x 8 + 3 special cross-read locations.
  EXPECT_EQ(stats_.locations, 53 * 8 + 3);
  EXPECT_EQ(Count("SELECT count(*) FROM locs"), stats_.locations);
  // pallet reads: pallets x 3 sites x reads_per_site.
  EXPECT_EQ(stats_.pallet_reads, 6 * 3 * 4);
  // Every case read pairs 1:1 with a pallet read.
  EXPECT_EQ(stats_.case_reads, stats_.cases * 3 * 4);
  EXPECT_EQ(Count("SELECT count(*) FROM caseR"), stats_.case_reads);
  EXPECT_EQ(Count("SELECT count(*) FROM parent"), stats_.cases);
  EXPECT_EQ(Count("SELECT count(*) FROM epc_info"), stats_.cases);
  EXPECT_EQ(Count("SELECT count(*) FROM product"), 1000);
  EXPECT_EQ(Count("SELECT count(*) FROM steps"), 100);
}

TEST_F(RfidGenTest, Deterministic) {
  GeneratorOptions opt = SmallOptions();
  Generate(opt);
  Database db2;
  auto r2 = rfidgen::Generate(opt, &db2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(stats_.case_reads, r2->case_reads);
  // Spot-check the first rows match.
  ASSERT_GT(db_.GetTable("caseR")->num_rows(), 0u);
  EXPECT_TRUE(db_.GetTable("caseR")->row(0) == db2.GetTable("caseR")->row(0));
}

TEST_F(RfidGenTest, SequencesAreHoursApartAndSiteOrdered) {
  Generate(SmallOptions());
  // Consecutive reads of one pallet are 1-36 h apart.
  auto res = ExecuteSql(db_,
                        "SELECT rtime, max(rtime) OVER (PARTITION BY epc ORDER "
                        "BY rtime ROWS BETWEEN 1 PRECEDING AND 1 PRECEDING) AS "
                        "prev FROM palletR");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  for (const Row& r : res->rows) {
    if (r[1].is_null()) continue;
    int64_t gap = r[0].timestamp_value() - r[1].timestamp_value();
    EXPECT_GE(gap, Hours(1));
    EXPECT_LE(gap, Hours(36));
  }
}

TEST_F(RfidGenTest, ForkliftReadsPresent) {
  Generate(SmallOptions());
  // Each pallet has one readerX read per site visit.
  EXPECT_EQ(Count("SELECT count(*) FROM palletR WHERE reader = 'readerX'"),
            6 * 3);
}

TEST_F(RfidGenTest, CaseReadsTrailTheirPalletReads) {
  Generate(SmallOptions());
  // Every case read is within (0, 5 min) of a pallet read of its pallet at
  // the same location — checked via the minimum over a sampled case.
  auto res = ExecuteSql(
      db_,
      "SELECT c.rtime, p.rtime FROM caseR c, parent pa, palletR p "
      "WHERE c.epc = pa.child_epc AND pa.parent_epc = p.epc "
      "AND c.biz_loc = p.biz_loc AND c.reader = p.reader");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_GT(res->rows.size(), 0u);
  size_t paired = 0;
  for (const Row& r : res->rows) {
    int64_t gap = r[0].timestamp_value() - r[1].timestamp_value();
    if (gap > 0 && gap < Minutes(5)) ++paired;
  }
  EXPECT_GT(paired, 0u);
}

class AnomalyTest : public RfidGenTest {
 protected:
  // Counts rows surviving the full rule set over all of caseR.
  int64_t CleanCount(const std::vector<std::string>& rule_texts) {
    CleansingRuleEngine engine(&db_);
    std::vector<const CleansingRule*> rules;
    for (const auto& text : rule_texts) {
      Status st = engine.DefineRule(text);
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    for (const CleansingRule& r : engine.rules()) rules.push_back(&r);
    auto chain = BuildCleansingChain(
        rules, db_, "__input", db_.GetTable("caseR")->schema().columns());
    EXPECT_TRUE(chain.ok()) << chain.status().ToString();
    std::string sql = "WITH __input AS (SELECT * FROM caseR)";
    for (const auto& [name, body] : chain->with_clauses) {
      sql += ", " + name + " AS (" + body + ")";
    }
    sql += " SELECT count(*) FROM " + chain->output_name;
    return Count(sql);
  }

  static std::string DuplicateRule() {
    return "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime "
           "AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 "
           "MINUTES ACTION DELETE B";
  }
  static std::string ReaderRule() {
    return "DEFINE reader ON caseR CLUSTER BY epc SEQUENCE BY rtime "
           "AS (A, *B) WHERE B.reader = 'readerX' AND B.rtime - A.rtime < 10 "
           "MINUTES ACTION DELETE A";
  }
  static std::string CycleRule() {
    return "DEFINE cycle ON caseR CLUSTER BY epc SEQUENCE BY rtime "
           "AS (A, B, C) WHERE A.biz_loc = C.biz_loc AND A.biz_loc <> "
           "B.biz_loc ACTION DELETE B";
  }
};

TEST_F(AnomalyTest, CleanDataHasNoAnomalies) {
  Generate(SmallOptions());
  int64_t base = Count("SELECT count(*) FROM caseR");
  EXPECT_EQ(CleanCount({DuplicateRule()}), base);
  EXPECT_EQ(CleanCount({ReaderRule()}), base);
  EXPECT_EQ(CleanCount({CycleRule()}), base);
}

TEST_F(AnomalyTest, DuplicateInjectionInvertedByRule) {
  Generate(SmallOptions());
  int64_t base = Count("SELECT count(*) FROM caseR");
  AnomalyOptions opt;
  opt.dirty_fraction = 0.10;
  opt.reader = opt.replacing = opt.cycles = opt.missing = false;
  auto st = rfidgen::InjectAnomalies(opt, &db_);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  ASSERT_GT(st->duplicates, 0);
  EXPECT_EQ(Count("SELECT count(*) FROM caseR"), base + st->duplicates);
  EXPECT_EQ(CleanCount({DuplicateRule()}), base);
}

TEST_F(AnomalyTest, ReaderInjectionInvertedByRule) {
  Generate(SmallOptions());
  int64_t base = Count("SELECT count(*) FROM caseR");
  AnomalyOptions opt;
  opt.dirty_fraction = 0.10;
  opt.duplicates = opt.replacing = opt.cycles = opt.missing = false;
  auto st = rfidgen::InjectAnomalies(opt, &db_);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  ASSERT_GT(st->reader, 0);
  EXPECT_EQ(CleanCount({ReaderRule()}), base);
}

TEST_F(AnomalyTest, CycleInjectionInvertedByRule) {
  Generate(SmallOptions());
  int64_t base = Count("SELECT count(*) FROM caseR");
  AnomalyOptions opt;
  opt.dirty_fraction = 0.10;
  opt.duplicates = opt.reader = opt.replacing = opt.missing = false;
  auto st = rfidgen::InjectAnomalies(opt, &db_);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  ASSERT_GT(st->cycles, 0);
  EXPECT_EQ(CleanCount({CycleRule()}), base);
}

TEST_F(AnomalyTest, ReplacingInjectionModifiedByRule) {
  Generate(SmallOptions());
  AnomalyOptions opt;
  opt.dirty_fraction = 0.10;
  opt.duplicates = opt.reader = opt.cycles = opt.missing = false;
  auto st = rfidgen::InjectAnomalies(opt, &db_);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  ASSERT_GT(st->replacing, 0);
  int64_t at_loc2 = Count(StrFormat("SELECT count(*) FROM caseR WHERE biz_loc "
                                    "= '%s'", rfidgen::kLoc2));
  EXPECT_EQ(at_loc2, st->replacing);
  // After the replacing rule, every LOC2 read has moved to LOC1.
  std::string rule = StrFormat(
      "DEFINE replacing ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE A.biz_loc = '%s' AND B.biz_loc = '%s' AND B.rtime - A.rtime < 20 "
      "MINUTES ACTION MODIFY A.biz_loc = '%s'",
      rfidgen::kLoc2, rfidgen::kLocA, rfidgen::kLoc1);
  CleansingRuleEngine engine(&db_);
  ASSERT_TRUE(engine.DefineRule(rule).ok());
  std::vector<const CleansingRule*> rules;
  for (const CleansingRule& r : engine.rules()) rules.push_back(&r);
  auto chain = BuildCleansingChain(rules, db_, "__input",
                                   db_.GetTable("caseR")->schema().columns());
  ASSERT_TRUE(chain.ok());
  std::string sql = "WITH __input AS (SELECT * FROM caseR)";
  for (const auto& [name, body] : chain->with_clauses) {
    sql += ", " + name + " AS (" + body + ")";
  }
  sql += StrFormat(" SELECT count(*) FROM %s WHERE biz_loc = '%s'",
                   chain->output_name.c_str(), rfidgen::kLoc2);
  EXPECT_EQ(Count(sql), 0);
}

TEST_F(AnomalyTest, MissingInjectionRemovesReads) {
  Generate(SmallOptions());
  int64_t base = Count("SELECT count(*) FROM caseR");
  AnomalyOptions opt;
  opt.dirty_fraction = 0.10;
  opt.duplicates = opt.reader = opt.replacing = opt.cycles = false;
  auto st = rfidgen::InjectAnomalies(opt, &db_);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  ASSERT_GT(st->missing, 0);
  EXPECT_EQ(Count("SELECT count(*) FROM caseR"), base - st->missing);
}

TEST_F(AnomalyTest, AllTypesRoughlyEven) {
  Generate(SmallOptions());
  AnomalyOptions opt;
  opt.dirty_fraction = 0.20;
  auto st = rfidgen::InjectAnomalies(opt, &db_);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_GT(st->duplicates, 0);
  EXPECT_GT(st->reader, 0);
  EXPECT_GT(st->replacing, 0);
  EXPECT_GT(st->cycles, 0);
  EXPECT_GT(st->missing, 0);
}

}  // namespace
}  // namespace rfid
