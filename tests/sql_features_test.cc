// Tests for the HAVING / LIMIT / COALESCE engine features.
#include <gtest/gtest.h>

#include "common/time_util.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "sql/render.h"

namespace rfid {
namespace {

class SqlFeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema reads;
    reads.AddColumn("epc", DataType::kString);
    reads.AddColumn("rtime", DataType::kTimestamp);
    reads.AddColumn("reader", DataType::kString);
    Table* t = db_.CreateTable("caseR", reads).value();
    // e0: 6 reads, e1: 4, e2: 2 (reader NULL on one row of e2).
    int counts[] = {6, 4, 2};
    int64_t ts = 0;
    for (int e = 0; e < 3; ++e) {
      for (int i = 0; i < counts[e]; ++i) {
        Value reader = (e == 2 && i == 0)
                           ? Value::Null()
                           : Value::String("r" + std::to_string(i % 2));
        ASSERT_TRUE(t->Append({Value::String("e" + std::to_string(e)),
                               Value::Timestamp(Minutes(ts++)), reader})
                        .ok());
      }
    }
    t->ComputeStats();
  }

  QueryResult MustRun(const std::string& sql) {
    auto r = ExecuteSql(db_, sql);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  Database db_;
};

TEST_F(SqlFeaturesTest, HavingFiltersGroups) {
  QueryResult res = MustRun(
      "SELECT epc, count(*) AS n FROM caseR GROUP BY epc HAVING count(*) > 3");
  ASSERT_EQ(res.rows.size(), 2u);
  for (const Row& r : res.rows) {
    EXPECT_GT(r[1].int64_value(), 3);
  }
}

TEST_F(SqlFeaturesTest, HavingMayReferenceGroupKey) {
  QueryResult res = MustRun(
      "SELECT epc, count(*) FROM caseR GROUP BY epc HAVING epc = 'e1'");
  ASSERT_EQ(res.rows.size(), 1u);
  EXPECT_EQ(res.rows[0][0].string_value(), "e1");
}

TEST_F(SqlFeaturesTest, HavingAggregateNotInSelect) {
  QueryResult res = MustRun(
      "SELECT epc FROM caseR GROUP BY epc HAVING min(rtime) > TIMESTAMP " +
      std::to_string(Minutes(3)));
  ASSERT_EQ(res.rows.size(), 2u);  // e1 (starts at 6m) and e2 (10m)
}

TEST_F(SqlFeaturesTest, HavingWithoutAggregationRejected) {
  EXPECT_FALSE(ExecuteSql(db_, "SELECT epc FROM caseR HAVING epc = 'x'").ok());
}

TEST_F(SqlFeaturesTest, LimitTruncates) {
  QueryResult res = MustRun("SELECT epc, rtime FROM caseR LIMIT 5");
  EXPECT_EQ(res.rows.size(), 5u);
  res = MustRun("SELECT epc FROM caseR LIMIT 0");
  EXPECT_EQ(res.rows.size(), 0u);
  res = MustRun("SELECT epc FROM caseR LIMIT 100");
  EXPECT_EQ(res.rows.size(), 12u);
}

TEST_F(SqlFeaturesTest, LimitAfterOrderBy) {
  QueryResult res = MustRun(
      "SELECT epc, rtime FROM caseR ORDER BY rtime DESC LIMIT 2");
  ASSERT_EQ(res.rows.size(), 2u);
  EXPECT_EQ(res.rows[0][1].timestamp_value(), Minutes(11));
  EXPECT_EQ(res.rows[1][1].timestamp_value(), Minutes(10));
}

TEST_F(SqlFeaturesTest, CoalesceScalars) {
  QueryResult res = MustRun(
      "SELECT epc, rtime, coalesce(reader, 'unknown') AS r FROM caseR "
      "WHERE epc = 'e2' ORDER BY rtime");
  ASSERT_EQ(res.rows.size(), 2u);
  EXPECT_EQ(res.rows[0][2].string_value(), "unknown");
  EXPECT_EQ(res.rows[1][2].string_value(), "r1");
}

TEST_F(SqlFeaturesTest, CoalesceInPredicate) {
  QueryResult res = MustRun(
      "SELECT count(*) FROM caseR WHERE coalesce(reader, 'r0') = 'r0'");
  // Rows with reader r0 (3 in e0, 2 in e1) plus the NULL-reader row.
  ASSERT_EQ(res.rows.size(), 1u);
  EXPECT_EQ(res.rows[0][0].int64_value(), 6);
}

TEST_F(SqlFeaturesTest, CoalesceErrors) {
  EXPECT_FALSE(ExecuteSql(db_, "SELECT coalesce() FROM caseR").ok());
}

TEST_F(SqlFeaturesTest, RenderRoundTripNewClauses) {
  const char* q =
      "SELECT epc, COUNT(*) AS n FROM caseR GROUP BY epc HAVING COUNT(*) > 3 "
      "ORDER BY epc DESC LIMIT 7";
  auto parsed = ParseSql(q);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::string rendered = StatementToSql(*parsed.value());
  EXPECT_NE(rendered.find("HAVING"), std::string::npos);
  EXPECT_NE(rendered.find("LIMIT 7"), std::string::npos);
  auto reparsed = ParseSql(rendered);
  ASSERT_TRUE(reparsed.ok()) << rendered;
  EXPECT_EQ(rendered, StatementToSql(*reparsed.value()));
}

TEST_F(SqlFeaturesTest, ExplainShowsLimit) {
  QueryResult res = MustRun("SELECT epc FROM caseR LIMIT 3");
  EXPECT_NE(res.explain.find("Limit"), std::string::npos) << res.explain;
}

}  // namespace
}  // namespace rfid
