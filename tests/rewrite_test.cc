// Tests for the rewrite engine: the motivation examples of Section 5.1
// (Figure 3), correlation/transitivity analysis, expanded and join-back
// correctness against naive cleansing, feasibility (Table 1 shape), join
// handling and multi-rule composition.
#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "common/time_util.h"
#include "plan/planner.h"
#include "rewrite/correlation.h"
#include "rewrite/rewriter.h"
#include "rewrite/transitivity.h"
#include "sql/parser.h"
#include "sql/render.h"

namespace rfid {
namespace {

std::string Ts(int64_t micros) { return "TIMESTAMP " + std::to_string(micros); }

// Sorts rows to compare result sets order-insensitively.
std::vector<std::string> Canonical(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  for (const Row& r : rows) {
    std::string s;
    for (const Value& v : r) s += v.ToString() + "|";
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class RewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema reads;
    reads.AddColumn("epc", DataType::kString);
    reads.AddColumn("rtime", DataType::kTimestamp);
    reads.AddColumn("reader", DataType::kString);
    reads.AddColumn("biz_loc", DataType::kString);
    case_r_ = db_.CreateTable("caseR", reads).value();

    Schema locs;
    locs.AddColumn("gln", DataType::kString);
    locs.AddColumn("site", DataType::kString);
    locs_ = db_.CreateTable("locs", locs).value();

    engine_ = std::make_unique<CleansingRuleEngine>(&db_);
    rewriter_ = std::make_unique<QueryRewriter>(&db_, engine_.get());
  }

  void AddRead(const std::string& epc, int64_t rtime, const std::string& reader,
               const std::string& loc) {
    ASSERT_TRUE(case_r_
                    ->Append({Value::String(epc), Value::Timestamp(rtime),
                              Value::String(reader), Value::String(loc)})
                    .ok());
  }

  void Finalize() {
    ASSERT_TRUE(case_r_->BuildIndex("rtime").ok());
    ASSERT_TRUE(case_r_->BuildIndex("epc").ok());
    case_r_->ComputeStats();
    locs_->ComputeStats();
  }

  void DefineReaderRule(int64_t window_minutes = 5) {
    ASSERT_TRUE(engine_
                    ->DefineRule(StrFormat(
                        "DEFINE reader ON caseR CLUSTER BY epc SEQUENCE BY "
                        "rtime AS (A, *B) WHERE B.reader = 'readerX' AND "
                        "B.rtime - A.rtime < %lld MINUTES ACTION DELETE A",
                        static_cast<long long>(window_minutes)))
                    .ok());
  }

  void DefineDuplicateNoTimeRule() {
    // Figure 3(b)'s C2: duplicate without the time constraint.
    ASSERT_TRUE(engine_
                    ->DefineRule("DEFINE dup ON caseR CLUSTER BY epc SEQUENCE "
                                 "BY rtime AS (E, F) WHERE E.biz_loc = "
                                 "F.biz_loc ACTION DELETE F")
                    .ok());
  }

  QueryResult Run(const std::string& sql) {
    auto res = ExecuteSql(db_, sql);
    EXPECT_TRUE(res.ok()) << sql << "\n" << res.status().ToString();
    return res.ok() ? std::move(res).value() : QueryResult{};
  }

  RewriteInfo MustRewrite(const std::string& sql, RewriteStrategy strategy) {
    RewriteOptions opts;
    opts.strategy = strategy;
    auto r = rewriter_->Rewrite(sql, opts);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
    return r.ok() ? std::move(r).value() : RewriteInfo{};
  }

  // Checks that a strategy produces the same rows as the naive rewrite.
  void ExpectMatchesNaive(const std::string& sql, RewriteStrategy strategy) {
    RewriteInfo naive = MustRewrite(sql, RewriteStrategy::kNaive);
    RewriteInfo other = MustRewrite(sql, strategy);
    QueryResult naive_res = Run(naive.sql);
    QueryResult other_res = Run(other.sql);
    EXPECT_EQ(Canonical(naive_res.rows), Canonical(other_res.rows))
        << "strategy " << RewriteStrategyName(strategy)
        << " diverged from naive.\nnaive sql: " << naive.sql
        << "\nother sql: " << other.sql;
  }

  Database db_;
  Table* case_r_ = nullptr;
  Table* locs_ = nullptr;
  std::unique_ptr<CleansingRuleEngine> engine_;
  std::unique_ptr<QueryRewriter> rewriter_;
};

// --- Section 5.1, Figure 3(a): rule C1 / query Q1 ---

TEST_F(RewriteTest, Figure3aDirectPushdownWouldBeWrong) {
  // R1 = { (e1, t1-2min, readerY), (e1, t1+2min, readerX) }, t1 = 60min.
  const int64_t t1 = Minutes(60);
  AddRead("e1", t1 - Minutes(2), "readerY", "locA");
  AddRead("e1", t1 + Minutes(2), "readerX", "locB");
  Finalize();
  DefineReaderRule(5);

  // Direct pushdown (clean only rows with rtime < t1) wrongly keeps r1.
  std::string pushdown =
      "WITH __wrong AS (SELECT * FROM caseR WHERE rtime < " + Ts(t1) + ") " +
      "SELECT * FROM __wrong";
  // (Cleansing applied to the pushed-down set: emulate by rewriting a
  // query over a fake table is unnecessary — the paper's point is that
  // the correct answer is empty while pushdown yields r1.)
  QueryResult wrong = Run(pushdown);
  EXPECT_EQ(wrong.rows.size(), 1u);  // r1 survives in the pushed-down set

  // The rewritten query (any strategy) returns the correct empty answer.
  std::string q1 = "SELECT * FROM caseR WHERE rtime < " + Ts(t1);
  for (RewriteStrategy s : {RewriteStrategy::kNaive, RewriteStrategy::kExpanded,
                            RewriteStrategy::kJoinBack}) {
    RewriteInfo info = MustRewrite(q1, s);
    QueryResult res = Run(info.sql);
    EXPECT_EQ(res.rows.size(), 0u) << RewriteStrategyName(s) << "\n" << info.sql;
  }
}

TEST_F(RewriteTest, Figure3cExpandedConditionShape) {
  AddRead("e1", Minutes(10), "readerY", "locA");
  Finalize();
  DefineReaderRule(5);
  const int64_t t1 = Minutes(60);
  std::string q1 = "SELECT * FROM caseR WHERE rtime < " + Ts(t1);
  RewriteInfo info = MustRewrite(q1, RewriteStrategy::kExpanded);

  // cc1: B.rtime < t1 + 5 min && B.reader = 'readerX' (Figure 3(c)).
  ASSERT_EQ(info.contexts.size(), 1u);
  ASSERT_TRUE(info.contexts[0].feasible);
  std::string cc = RenderExpr(info.contexts[0].context_condition);
  EXPECT_NE(cc.find("reader = 'readerX'"), std::string::npos) << cc;
  EXPECT_NE(cc.find("rtime <"), std::string::npos) << cc;

  // Relaxed form: rtime < t1 + 5 min.
  ASSERT_NE(info.relaxed_condition, nullptr);
  std::string relaxed = RenderExpr(info.relaxed_condition);
  EXPECT_NE(relaxed.find(std::to_string(t1 + Minutes(5) - 1)), std::string::npos)
      << relaxed;
}

// --- Section 5.1, Figure 3(b)(d): rule C2 / query Q2 ---

TEST_F(RewriteTest, Figure3dExpandedInfeasibleForUnboundedDuplicate) {
  // r3/r4 both at locZ, far apart; C2 has no time bound.
  const int64_t t2 = Minutes(60);
  AddRead("e2", t2 - Minutes(2), "r", "locZ");
  AddRead("e2", t2 + Minutes(2), "r", "locZ");
  Finalize();
  DefineDuplicateNoTimeRule();

  std::string q2 = "SELECT * FROM caseR WHERE rtime > " + Ts(t2);
  // Expanded must be infeasible (Figure 3(d): no conjuncts derivable on E).
  RewriteOptions opts;
  opts.strategy = RewriteStrategy::kExpanded;
  auto r = rewriter_->Rewrite(q2, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kRewriteInfeasible);

  // Join-back gives the correct (empty) answer: r4 is a duplicate of r3.
  RewriteInfo jb = MustRewrite(q2, RewriteStrategy::kJoinBack);
  QueryResult res = Run(jb.sql);
  EXPECT_EQ(res.rows.size(), 0u) << jb.sql;

  // Auto falls back to join-back.
  RewriteInfo auto_info = MustRewrite(q2, RewriteStrategy::kAuto);
  EXPECT_EQ(auto_info.chosen, RewriteStrategy::kJoinBack);
}

TEST_F(RewriteTest, JoinBackKeepsWholeSequences) {
  // Sequences: e1 has a read in the query window, e2 does not. Join-back
  // must cleanse all of e1 and none of e2.
  const int64_t t2 = Minutes(60);
  AddRead("e1", Minutes(10), "r", "locA");
  AddRead("e1", t2 + Minutes(5), "r", "locA");  // duplicate of the first
  AddRead("e2", Minutes(20), "r", "locB");
  Finalize();
  DefineDuplicateNoTimeRule();

  std::string q = "SELECT * FROM caseR WHERE rtime > " + Ts(t2);
  RewriteInfo jb = MustRewrite(q, RewriteStrategy::kJoinBack);
  QueryResult res = Run(jb.sql);
  // e1's second read is a duplicate (same loc as @10min) -> removed; the
  // correct answer is empty.
  EXPECT_EQ(res.rows.size(), 0u) << jb.sql;
}

// --- correctness: every strategy equals naive on varied data ---

class RewriteEquivalenceTest : public RewriteTest,
                               public ::testing::WithParamInterface<int> {};

TEST_P(RewriteEquivalenceTest, StrategiesAgreeOnRandomishData) {
  // Deterministic pseudo-random data seeded by the parameter.
  Random rng(static_cast<uint64_t>(GetParam()));
  const char* locs[] = {"locA", "locB", "locC", "loc2"};
  const char* readers[] = {"r1", "r2", "readerX"};
  for (int e = 0; e < 8; ++e) {
    std::string epc = "e" + std::to_string(e);
    int64_t t = static_cast<int64_t>(rng.Uniform(100)) * Minutes(1);
    int reads = 3 + static_cast<int>(rng.Uniform(6));
    for (int i = 0; i < reads; ++i) {
      AddRead(epc, t, readers[rng.Uniform(3)], locs[rng.Uniform(4)]);
      t += Minutes(1 + static_cast<int64_t>(rng.Uniform(90)));
    }
  }
  Finalize();
  DefineReaderRule(10);
  ASSERT_TRUE(engine_
                  ->DefineRule("DEFINE dup ON caseR CLUSTER BY epc SEQUENCE BY "
                               "rtime AS (A, B) WHERE A.biz_loc = B.biz_loc AND "
                               "B.rtime - A.rtime < 5 MINUTES ACTION DELETE B")
                  .ok());

  std::string q = "SELECT epc, rtime, biz_loc FROM caseR WHERE rtime <= " +
                  Ts(Minutes(240));
  ExpectMatchesNaive(q, RewriteStrategy::kExpanded);
  ExpectMatchesNaive(q, RewriteStrategy::kJoinBack);
  ExpectMatchesNaive(q, RewriteStrategy::kAuto);

  std::string q_lower = "SELECT epc, rtime FROM caseR WHERE rtime >= " +
                        Ts(Minutes(120));
  ExpectMatchesNaive(q_lower, RewriteStrategy::kExpanded);
  ExpectMatchesNaive(q_lower, RewriteStrategy::kJoinBack);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteEquivalenceTest,
                         ::testing::Range(1, 9));

// --- joins ---

TEST_F(RewriteTest, JoinQueryCandidatesAndCorrectness) {
  ASSERT_TRUE(locs_->Append({Value::String("locA"), Value::String("dc1")}).ok());
  ASSERT_TRUE(locs_->Append({Value::String("locB"), Value::String("store1")}).ok());
  ASSERT_TRUE(locs_->Append({Value::String("locC"), Value::String("store1")}).ok());
  AddRead("e1", Minutes(1), "r1", "locA");
  AddRead("e1", Minutes(3), "readerX", "locA");  // kills the 1min read
  AddRead("e1", Minutes(50), "r1", "locB");
  AddRead("e2", Minutes(5), "r1", "locC");
  Finalize();
  DefineReaderRule(5);

  std::string q =
      "SELECT c.epc, c.rtime, l.site FROM caseR c, locs l "
      "WHERE c.biz_loc = l.gln AND c.rtime <= " + Ts(Minutes(60)) +
      " AND l.site = 'store1'";
  RewriteInfo info = MustRewrite(q, RewriteStrategy::kAuto);
  // Candidates must include the semi-join pushdown variants.
  bool has_semijoin_variant = false;
  for (const RewriteCandidate& c : info.candidates) {
    if (c.label.find("semijoins") != std::string::npos) has_semijoin_variant = true;
  }
  EXPECT_TRUE(has_semijoin_variant);

  QueryResult res = Run(info.sql);
  // Expected: e1@50(locB,store1), e2@5(locC,store1). e1@1min is cleansed
  // but was at dc1 anyway; readerX read is at dc1.
  ASSERT_EQ(res.rows.size(), 2u) << info.sql;

  ExpectMatchesNaive(q, RewriteStrategy::kExpanded);
  ExpectMatchesNaive(q, RewriteStrategy::kJoinBack);
}

TEST_F(RewriteTest, QueryInsideWithClauseIsRewritten) {
  AddRead("e1", Minutes(1), "r1", "locA");
  AddRead("e1", Minutes(3), "readerX", "locB");
  Finalize();
  DefineReaderRule(5);
  std::string q =
      "WITH v1 AS (SELECT epc, rtime, biz_loc FROM caseR WHERE rtime <= " +
      Ts(Minutes(90)) + ") SELECT * FROM v1 WHERE biz_loc = 'locA'";
  RewriteInfo info = MustRewrite(q, RewriteStrategy::kAuto);
  EXPECT_NE(info.chosen, RewriteStrategy::kNone);
  QueryResult res = Run(info.sql);
  EXPECT_EQ(res.rows.size(), 0u);  // the locA read is deleted by the rule
}

TEST_F(RewriteTest, NoPredicateQueryCleansesEverything) {
  // SELECT with no restriction on the reads table: s is TRUE, so the
  // expanded condition degenerates to TRUE — the rewrite must cleanse the
  // unrestricted input, not filter it down to the context regions
  // (regression: ec used to collapse to the cc disjuncts alone).
  AddRead("e1", Minutes(0), "r1", "locA");
  AddRead("e1", Minutes(60), "r2", "locB");
  Finalize();
  DefineReaderRule(5);
  for (RewriteStrategy s : {RewriteStrategy::kExpanded,
                            RewriteStrategy::kJoinBack, RewriteStrategy::kAuto}) {
    RewriteInfo info = MustRewrite("SELECT * FROM caseR", s);
    QueryResult res = Run(info.sql);
    EXPECT_EQ(res.rows.size(), 2u) << RewriteStrategyName(s) << "\n" << info.sql;
  }
}

TEST_F(RewriteTest, QueryWithoutRulesPassesThrough) {
  AddRead("e1", Minutes(1), "r1", "locA");
  Finalize();
  // No rules defined.
  auto info = rewriter_->Rewrite("SELECT * FROM caseR");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->chosen, RewriteStrategy::kNone);
  EXPECT_EQ(info->sql, "SELECT * FROM caseR");
}

TEST_F(RewriteTest, RuleFreeTableUnaffectedByOtherRules) {
  AddRead("e1", Minutes(1), "r1", "locA");
  ASSERT_TRUE(locs_->Append({Value::String("locA"), Value::String("dc1")}).ok());
  Finalize();
  DefineReaderRule(5);
  auto info = rewriter_->Rewrite("SELECT * FROM locs");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->chosen, RewriteStrategy::kNone);
}

// --- correlation / transitivity units ---

TEST_F(RewriteTest, CorrelationForReaderRule) {
  Finalize();
  DefineReaderRule(10);
  const CleansingRule* rule = engine_->FindRule("reader");
  ASSERT_NE(rule, nullptr);
  auto corrs = AnalyzeCorrelations(*rule);
  ASSERT_EQ(corrs.size(), 1u);
  const ContextCorrelation& b = corrs[0];
  EXPECT_EQ(b.name, "B");
  EXPECT_FALSE(b.position_based);
  // Implied: epc equality; B after A within (0, 10min).
  ASSERT_EQ(b.equalities.size(), 1u);
  EXPECT_EQ(b.equalities[0].first, "epc");
  ASSERT_TRUE(b.skey_diff_lo.has_value());
  EXPECT_EQ(*b.skey_diff_lo, 1);
  ASSERT_TRUE(b.skey_diff_hi.has_value());
  EXPECT_EQ(*b.skey_diff_hi, Minutes(10) - 1);
  ASSERT_EQ(b.context_only.size(), 1u);  // B.reader = 'readerX'
}

TEST_F(RewriteTest, CorrelationDropsNonPreservingConjuncts) {
  Finalize();
  ASSERT_TRUE(engine_
                  ->DefineRule("DEFINE dup ON caseR CLUSTER BY epc SEQUENCE BY "
                               "rtime AS (A, B) WHERE A.biz_loc = B.biz_loc AND "
                               "B.rtime - A.rtime < 5 MINUTES ACTION DELETE B")
                  .ok());
  auto corrs = AnalyzeCorrelations(*engine_->FindRule("dup"));
  ASSERT_EQ(corrs.size(), 1u);
  const ContextCorrelation& a = corrs[0];
  EXPECT_TRUE(a.position_based);
  // biz_loc equality dropped (Observation 1b); context-only set empty.
  EXPECT_EQ(a.equalities.size(), 1u);  // only the implied epc equality
  EXPECT_TRUE(a.context_only.empty());
  // Time bound kept (toward the target): A - B >= -(5min - 1us).
  ASSERT_TRUE(a.skey_diff_lo.has_value());
  EXPECT_EQ(*a.skey_diff_lo, -(Minutes(5) - 1));
  ASSERT_TRUE(a.skey_diff_hi.has_value());
  EXPECT_EQ(*a.skey_diff_hi, -1);
}

TEST_F(RewriteTest, CycleRuleIsInfeasibleBothDirections) {
  Finalize();
  ASSERT_TRUE(engine_
                  ->DefineRule("DEFINE cycle ON caseR CLUSTER BY epc SEQUENCE "
                               "BY rtime AS (A, B, C) WHERE A.biz_loc = "
                               "C.biz_loc AND A.biz_loc <> B.biz_loc "
                               "ACTION DELETE B")
                  .ok());
  for (const char* cmp : {"<=", ">="}) {
    std::string q = StrFormat("SELECT * FROM caseR WHERE rtime %s %s", cmp,
                              Ts(Minutes(60)).c_str());
    RewriteOptions opts;
    opts.strategy = RewriteStrategy::kExpanded;
    auto r = rewriter_->Rewrite(q, opts);
    EXPECT_FALSE(r.ok()) << cmp;
  }
}

TEST_F(RewriteTest, EqualityPropagationThroughCkey) {
  Finalize();
  DefineReaderRule(5);
  // A predicate on epc (the cluster key) must propagate to the context.
  std::string q = "SELECT * FROM caseR WHERE epc = 'e7'";
  RewriteInfo info = MustRewrite(q, RewriteStrategy::kExpanded);
  ASSERT_EQ(info.contexts.size(), 1u);
  std::string cc = RenderExpr(info.contexts[0].context_condition);
  EXPECT_NE(cc.find("epc = 'e7'"), std::string::npos) << cc;
}

}  // namespace
}  // namespace rfid
