// Vectorized execution correctness: batch-at-a-time plans must be
// *bit-identical* to the row-at-a-time interpreter (exact row order and
// values) across scans/filters/joins/aggregates/windows and all three
// cleansing rewrite strategies, at every batch size including
// pathological ones (capacity 1 and primes that straddle operator
// boundaries), serial and parallel; EXPLAIN must surface the batch size
// next to the per-operator DOP; and guardrails (memory budget, deadline,
// cancellation) must trip mid-batch-pipeline exactly as they do on the
// row engine, releasing all accounted memory on unwind.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/string_util.h"
#include "exec/parallel.h"
#include "expr/row_batch.h"
#include "plan/planner.h"
#include "rewrite/rewriter.h"
#include "rfidgen/anomaly.h"
#include "rfidgen/rfidgen.h"
#include "rfidgen/workload.h"

namespace rfid {
namespace {

// Exact, order-sensitive serialization: vectorized output must match the
// interpreted plan row for row, so no sorting before comparison.
std::vector<std::string> Exact(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& r : rows) {
    std::string s;
    for (const Value& v : r) s += v.ToString() + "|";
    out.push_back(std::move(s));
  }
  return out;
}

class VectorizedExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rfidgen::GeneratorOptions gen;
    gen.num_pallets = 8;
    gen.min_cases_per_pallet = 3;
    gen.max_cases_per_pallet = 6;
    gen.reads_per_site = 5;
    gen.num_stores = 30;
    gen.num_warehouses = 10;
    gen.num_dcs = 5;
    gen.locations_per_site = 10;
    auto g = rfidgen::Generate(gen, &db_);
    ASSERT_TRUE(g.ok()) << g.status().ToString();

    rfidgen::AnomalyOptions anomalies;
    anomalies.dirty_fraction = 0.15;
    auto a = rfidgen::InjectAnomalies(anomalies, &db_);
    ASSERT_TRUE(a.ok()) << a.status().ToString();

    engine_ = std::make_unique<CleansingRuleEngine>(&db_);
    for (const std::string& def : workload::StandardRuleDefinitions(3)) {
      Status st = engine_->DefineRule(def);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    rewriter_ = std::make_unique<QueryRewriter>(&db_, engine_.get());
  }

  void TearDown() override {
    SetVectorizedForTest(-1);        // restore env default
    SetBatchCapacityForTest(0);      // restore env/default capacity
    SetParallelPolicyForTest(0, 0);  // restore env/hardware defaults
  }

  QueryResult Run(const std::string& sql, ExecContext* ctx = nullptr) {
    auto res = ctx == nullptr ? ExecuteSql(db_, sql) : ExecuteSql(db_, sql, ctx);
    EXPECT_TRUE(res.ok()) << sql << "\n" << res.status().ToString();
    return res.ok() ? std::move(res).value() : QueryResult{};
  }

  std::string Rewrite(const std::string& sql, RewriteStrategy strategy) {
    RewriteOptions opts;
    opts.strategy = strategy;
    auto r = rewriter_->Rewrite(sql, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->sql : std::string();
  }

  // Runs `sql` on the row interpreter, then vectorized at several batch
  // capacities (1 = one row per batch, primes so operator row counts
  // never divide evenly, and the default), demanding identical output
  // including row order each time.
  void ExpectBitIdentical(const std::string& sql) {
    SetVectorizedForTest(0);
    QueryResult interpreted = Run(sql);

    SetVectorizedForTest(1);
    for (size_t capacity : {size_t{1}, size_t{7}, size_t{1024}}) {
      SetBatchCapacityForTest(capacity);
      QueryResult vectorized = Run(sql);
      EXPECT_EQ(Exact(interpreted.rows), Exact(vectorized.rows))
          << "vectorized output diverged from interpreter (batch=" << capacity
          << ")\nsql: " << sql << "\nexplain:\n" << vectorized.explain;
    }
    SetBatchCapacityForTest(0);
    SetVectorizedForTest(-1);
  }

  Database db_;
  std::unique_ptr<CleansingRuleEngine> engine_;
  std::unique_ptr<QueryRewriter> rewriter_;
};

TEST_F(VectorizedExecTest, ScanFilterProjectJoinAggregateBitIdentical) {
  int64_t t1 = workload::T1ForSelectivity(db_, 0.6);
  // Full scan + fused filter + projection expressions.
  ExpectBitIdentical(
      StrFormat("SELECT epc, rtime, biz_loc FROM caseR WHERE rtime <= "
                "TIMESTAMP %lld ORDER BY rtime, epc",
                static_cast<long long>(t1)));
  // Hash join against the reference table, probe order preserved.
  ExpectBitIdentical(
      "SELECT r.epc, r.rtime, e.product FROM caseR r, epc_info e "
      "WHERE r.epc = e.epc");
  // Multi-match joins: every probe row fans out over duplicate build keys.
  ExpectBitIdentical(
      "SELECT r.epc, r2.rtime FROM caseR r, caseR r2 "
      "WHERE r.epc = r2.epc AND r.reader = 'r1'");
  // Aggregation (grouped and global) over batched input.
  ExpectBitIdentical(
      "SELECT biz_loc, count(*), min(rtime), max(rtime) FROM caseR "
      "GROUP BY biz_loc ORDER BY biz_loc");
  ExpectBitIdentical("SELECT count(*), count(DISTINCT epc) FROM caseR");
  // DISTINCT and LIMIT interact with batch boundaries.
  ExpectBitIdentical("SELECT DISTINCT biz_loc FROM caseR ORDER BY biz_loc");
  ExpectBitIdentical("SELECT epc, rtime FROM caseR ORDER BY rtime, epc LIMIT 10");
}

TEST_F(VectorizedExecTest, AllRewriteStrategiesBitIdentical) {
  std::string q1 = workload::Q1(workload::T1ForSelectivity(db_, 0.5));
  std::string q2 = workload::Q2(workload::T2ForSelectivity(db_, 0.5), "dc2");
  for (RewriteStrategy strategy :
       {RewriteStrategy::kNaive, RewriteStrategy::kExpanded,
        RewriteStrategy::kJoinBack}) {
    ExpectBitIdentical(Rewrite(q1, strategy));
    ExpectBitIdentical(Rewrite(q2, strategy));
  }
}

TEST_F(VectorizedExecTest, ComposesWithMorselParallelism) {
  // The batch engine and morsel-parallel operators must agree with the
  // serial row interpreter simultaneously.
  std::string q1 = Rewrite(workload::Q1(workload::T1ForSelectivity(db_, 0.5)),
                           RewriteStrategy::kExpanded);
  SetVectorizedForTest(0);
  SetParallelPolicyForTest(1, 0);
  QueryResult baseline = Run(q1);

  SetVectorizedForTest(1);
  SetBatchCapacityForTest(7);
  SetParallelPolicyForTest(4, 64);
  QueryResult both = Run(q1);
  EXPECT_EQ(Exact(baseline.rows), Exact(both.rows))
      << "vectorized+parallel diverged from serial interpreter\n"
      << both.explain;
}

TEST_F(VectorizedExecTest, ExplainReportsBatchSize) {
#ifdef RFID_VECTORIZED_OFF
  GTEST_SKIP() << "built with RFID_VECTORIZED=OFF; every plan is row-at-a-time";
#endif
  SetVectorizedForTest(1);
  SetBatchCapacityForTest(256);
  QueryResult res = Run("SELECT epc, rtime FROM caseR ORDER BY rtime, epc");
  EXPECT_NE(res.explain.find("vectorized: on (batch=256)"), std::string::npos)
      << res.explain;
  // Every operator line reports the batch size next to its dop.
  EXPECT_NE(res.explain.find(" batch=256"), std::string::npos) << res.explain;

  SetVectorizedForTest(0);
  QueryResult off = Run("SELECT epc FROM caseR");
  EXPECT_NE(off.explain.find("vectorized: off"), std::string::npos)
      << off.explain;
  EXPECT_NE(off.explain.find(" batch=0"), std::string::npos) << off.explain;
}

TEST_F(VectorizedExecTest, MemoryBudgetTripsMidBatchPipeline) {
  SetVectorizedForTest(1);
  ExecLimits limits;
  limits.memory_budget_bytes = 4 << 10;  // 4 KB: far below the scan output
  ExecContext ctx(limits);
  auto res = ExecuteSql(
      db_, "SELECT epc, rtime, biz_loc FROM caseR ORDER BY rtime", &ctx);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
  // Unwinding a batch pipeline releases everything that was charged.
  EXPECT_EQ(ctx.memory_used(), 0u);
}

TEST_F(VectorizedExecTest, DeadlineTripsMidBatchPipeline) {
  SetVectorizedForTest(1);
  ExecLimits limits;
  limits.timeout_micros = 1;  // expires before the first batch completes
  ExecContext ctx(limits);
  auto res = ExecuteSql(
      db_, "SELECT epc, rtime FROM caseR ORDER BY rtime, epc", &ctx);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ctx.memory_used(), 0u);
}

TEST_F(VectorizedExecTest, CancellationTripsMidBatchPipeline) {
  SetVectorizedForTest(1);
  ExecContext ctx;
  ctx.RequestCancel();
  auto res = ExecuteSql(db_, "SELECT epc FROM caseR", &ctx);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(ctx.memory_used(), 0u);
}

TEST_F(VectorizedExecTest, OutputRowLimitExactOnBatchPath) {
  // The row cap must trip at exactly the same row on the batch path,
  // even when the limit falls mid-batch.
  SetVectorizedForTest(1);
  SetBatchCapacityForTest(64);
  ExecLimits limits;
  limits.max_output_rows = 5;
  ExecContext ctx(limits);
  auto res = ExecuteSql(db_, "SELECT epc FROM caseR", &ctx);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.memory_used(), 0u);

  // Under the cap, results flow normally.
  ExecContext ctx2(limits);
  auto ok = ExecuteSql(db_, "SELECT epc FROM caseR LIMIT 5", &ctx2);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().rows.size(), 5u);
}

}  // namespace
}  // namespace rfid
