// End-to-end SQL execution tests: plans built by the planner, executed by
// the engine, checked for both results and plan shape (index usage, order
// sharing, join strategy).
#include <gtest/gtest.h>

#include "common/time_util.h"
#include "plan/planner.h"
#include "sql/parser.h"

namespace rfid {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema reads;
    reads.AddColumn("epc", DataType::kString);
    reads.AddColumn("rtime", DataType::kTimestamp);
    reads.AddColumn("reader", DataType::kString);
    reads.AddColumn("biz_loc", DataType::kString);
    Table* r = db_.CreateTable("caseR", reads).value();
    // epc e1: locA -> locA(dup) -> locB;  epc e2: locB -> locC.
    Add(r, "e1", Minutes(0), "r1", "locA");
    Add(r, "e1", Minutes(2), "r2", "locA");
    Add(r, "e1", Minutes(90), "r3", "locB");
    Add(r, "e2", Minutes(10), "r1", "locB");
    Add(r, "e2", Minutes(100), "readerX", "locC");
    ASSERT_TRUE(r->BuildIndex("rtime").ok());
    ASSERT_TRUE(r->BuildIndex("epc").ok());
    r->ComputeStats();

    Schema locs;
    locs.AddColumn("gln", DataType::kString);
    locs.AddColumn("site", DataType::kString);
    locs.AddColumn("loc_desc", DataType::kString);
    Table* l = db_.CreateTable("locs", locs).value();
    ASSERT_TRUE(l->Append({Value::String("locA"), Value::String("dc1"),
                           Value::String("dock door A")})
                    .ok());
    ASSERT_TRUE(l->Append({Value::String("locB"), Value::String("dc1"),
                           Value::String("dock door B")})
                    .ok());
    ASSERT_TRUE(l->Append({Value::String("locC"), Value::String("store7"),
                           Value::String("shelf C")})
                    .ok());
    l->ComputeStats();
  }

  void Add(Table* t, const std::string& epc, int64_t rtime,
           const std::string& reader, const std::string& loc) {
    ASSERT_TRUE(t->Append({Value::String(epc), Value::Timestamp(rtime),
                           Value::String(reader), Value::String(loc)})
                    .ok());
  }

  QueryResult MustRun(const std::string& sql) {
    auto r = ExecuteSql(db_, sql);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  Database db_;
};

TEST_F(PlannerTest, SelectStarWithPredicate) {
  QueryResult res = MustRun(
      "select * from caseR where rtime <= TIMESTAMP " +
      std::to_string(Minutes(10)));
  EXPECT_EQ(res.rows.size(), 3u);
  // Sargable predicate on an indexed column => index range scan.
  EXPECT_NE(res.explain.find("IndexRangeScan"), std::string::npos) << res.explain;
}

TEST_F(PlannerTest, NonSargablePredicateFullScans) {
  QueryResult res = MustRun("select * from caseR where reader = 'readerX'");
  EXPECT_EQ(res.rows.size(), 1u);
  EXPECT_NE(res.explain.find("TableScan"), std::string::npos);
}

TEST_F(PlannerTest, ProjectionAndExpressions) {
  QueryResult res = MustRun(
      "select epc, rtime + 5 minutes as bumped from caseR where epc = 'e2'");
  ASSERT_EQ(res.rows.size(), 2u);
  EXPECT_EQ(res.desc.field(1).name, "bumped");
  EXPECT_EQ(res.rows[0][1].timestamp_value(), Minutes(15));
}

TEST_F(PlannerTest, JoinWithDimensionTable) {
  QueryResult res = MustRun(
      "select c.epc, l.site from caseR c, locs l "
      "where c.biz_loc = l.gln and l.site = 'dc1'");
  EXPECT_EQ(res.rows.size(), 4u);  // locC read excluded
  EXPECT_NE(res.explain.find("HashJoin"), std::string::npos);
}

TEST_F(PlannerTest, TwoJoinsSameTableDifferentAliases) {
  QueryResult res = MustRun(
      "select l1.loc_desc, l2.loc_desc from caseR c, locs l1, locs l2 "
      "where c.biz_loc = l1.gln and c.biz_loc = l2.gln and c.epc = 'e1'");
  EXPECT_EQ(res.rows.size(), 3u);
}

TEST_F(PlannerTest, GroupByWithAggregates) {
  QueryResult res = MustRun(
      "select epc, count(*) as n, count(distinct biz_loc) as locs "
      "from caseR group by epc");
  ASSERT_EQ(res.rows.size(), 2u);
  // Group order is first-seen: e1 first.
  EXPECT_EQ(res.rows[0][0].string_value(), "e1");
  EXPECT_EQ(res.rows[0][1].int64_value(), 3);
  EXPECT_EQ(res.rows[0][2].int64_value(), 2);
  EXPECT_EQ(res.rows[1][2].int64_value(), 2);
}

TEST_F(PlannerTest, GroupByExpressionReusedInSelect) {
  QueryResult res = MustRun(
      "select l.site, count(*) from caseR c, locs l where c.biz_loc = l.gln "
      "group by l.site");
  ASSERT_EQ(res.rows.size(), 2u);
}

TEST_F(PlannerTest, InSubqueryBecomesSemiJoin) {
  QueryResult res = MustRun(
      "select * from caseR where epc in "
      "(select epc from caseR where reader = 'readerX')");
  EXPECT_EQ(res.rows.size(), 2u);  // all of e2's reads
  EXPECT_NE(res.explain.find("HashSemiJoin"), std::string::npos) << res.explain;
}

TEST_F(PlannerTest, UnionAll) {
  QueryResult res = MustRun(
      "select epc from caseR where epc = 'e1' "
      "union all select epc from caseR where epc = 'e2'");
  EXPECT_EQ(res.rows.size(), 5u);
}

TEST_F(PlannerTest, DistinctAndOrderBy) {
  QueryResult res = MustRun(
      "select distinct biz_loc from caseR order by biz_loc desc");
  ASSERT_EQ(res.rows.size(), 3u);
  EXPECT_EQ(res.rows[0][0].string_value(), "locC");
  EXPECT_EQ(res.rows[2][0].string_value(), "locA");
}

TEST_F(PlannerTest, WindowLagInWithClause) {
  // The duplicate-detection pattern from Section 4.1 of the paper.
  QueryResult res = MustRun(
      "with v1 as ( "
      "  select epc, rtime, biz_loc as loc_current, "
      "    max(biz_loc) over (partition by epc order by rtime asc "
      "      rows between 1 preceding and 1 preceding) as loc_before "
      "  from caseR) "
      "select * from v1 "
      "where loc_current <> loc_before or loc_before is null");
  // e1: first read kept, dup dropped, locB kept. e2: both kept. => 4 rows.
  EXPECT_EQ(res.rows.size(), 4u);
}

TEST_F(PlannerTest, WindowOrderSharingSkipsSecondSort) {
  // Two window expressions with the same (partition, order): one sort.
  QueryResult res = MustRun(
      "select epc, rtime, "
      "  max(rtime) over (partition by epc order by rtime "
      "    rows between 1 preceding and 1 preceding) as prev_time, "
      "  max(biz_loc) over (partition by epc order by rtime "
      "    rows between 1 preceding and 1 preceding) as prev_loc "
      "from caseR");
  ASSERT_EQ(res.rows.size(), 5u);
  size_t first = res.explain.find("Sort");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(res.explain.find("Sort", first + 1), std::string::npos)
      << "expected exactly one Sort:\n"
      << res.explain;
}

TEST_F(PlannerTest, WindowRangeFrameCountsTrailingReads) {
  QueryResult res = MustRun(
      "select epc, rtime, "
      "  max(case when reader = 'readerX' then 1 else 0 end) over "
      "    (partition by epc order by rtime "
      "     range between 1 microseconds following and 15 minutes following) "
      "  as has_readerx_after "
      "from caseR");
  ASSERT_EQ(res.rows.size(), 5u);
  // e2@10m is not within 15m of the readerX read at 100m... verify values.
  // Sorted output: e1@0, e1@2m, e1@90m, e2@10m, e2@100m.
  EXPECT_EQ(res.rows[0][2].int64_value(), 0);
  EXPECT_TRUE(res.rows[2][2].is_null());  // no following rows
  EXPECT_EQ(res.rows[3][2].int64_value(), 0);
}

TEST_F(PlannerTest, AvgDwellQueryShape) {
  // Miniature of benchmark query q1.
  QueryResult res = MustRun(
      "with v1 as ( "
      "  select biz_loc as current_loc, rtime, "
      "    max(rtime) over (partition by epc order by rtime "
      "      rows between 1 preceding and 1 preceding) as prev_time, "
      "    max(biz_loc) over (partition by epc order by rtime "
      "      rows between 1 preceding and 1 preceding) as prev_loc "
      "  from caseR) "
      "select l1.loc_desc, l2.loc_desc, avg(rtime - prev_time) "
      "from v1, locs l1, locs l2 "
      "where v1.prev_loc = l1.gln and v1.current_loc = l2.gln "
      "group by l1.loc_desc, l2.loc_desc");
  // Transitions: e1 locA->locA, locA->locB; e2 locB->locC. 3 groups.
  ASSERT_EQ(res.rows.size(), 3u);
}

TEST_F(PlannerTest, CteReferencedWithPredicate) {
  QueryResult res = MustRun(
      "with v as (select epc, rtime from caseR) "
      "select * from v where rtime > TIMESTAMP " +
      std::to_string(Minutes(50)));
  EXPECT_EQ(res.rows.size(), 2u);
}

TEST_F(PlannerTest, ConstantFoldingFreePredicates) {
  QueryResult res = MustRun("select * from caseR where 1 = 1");
  EXPECT_EQ(res.rows.size(), 5u);
  res = MustRun("select * from caseR where 1 = 2");
  EXPECT_EQ(res.rows.size(), 0u);
}

TEST_F(PlannerTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(ExecuteSql(db_, "select * from nope").ok());
  EXPECT_FALSE(ExecuteSql(db_, "select bogus_col from caseR").ok());
  EXPECT_FALSE(ExecuteSql(db_, "select epc from caseR, locs").ok());  // cross product
  EXPECT_FALSE(ExecuteSql(db_, "select c.epc from caseR c, caseR c "
                               "where c.epc = c.epc").ok());  // dup alias
}

TEST_F(PlannerTest, CostEstimatesOrderSensibly) {
  // A highly selective query should cost less than a full-table one.
  auto narrow = PlanSql(db_, "select * from caseR where rtime <= TIMESTAMP 1");
  auto wide = PlanSql(db_, "select * from caseR");
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  EXPECT_LT(narrow->estimated_cost, wide->estimated_cost);
}

}  // namespace
}  // namespace rfid
