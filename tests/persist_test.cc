// Tests for database persistence: round-tripping all value types,
// escaping, error handling, and a full RFIDGen database.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/fault.h"
#include "common/time_util.h"
#include "plan/planner.h"
#include "rfidgen/rfidgen.h"
#include "storage/persist.h"

namespace rfid {
namespace {

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/rfid_persist_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(PersistTest, RoundTripAllTypes) {
  Database db;
  Schema s;
  s.AddColumn("b", DataType::kBool);
  s.AddColumn("i", DataType::kInt64);
  s.AddColumn("d", DataType::kDouble);
  s.AddColumn("str", DataType::kString);
  s.AddColumn("ts", DataType::kTimestamp);
  s.AddColumn("iv", DataType::kInterval);
  Table* t = db.CreateTable("mix", s).value();
  ASSERT_TRUE(t->Append({Value::Bool(true), Value::Int64(-42),
                         Value::Double(3.25), Value::String("plain"),
                         Value::Timestamp(Minutes(7)), Value::Interval(5)})
                  .ok());
  ASSERT_TRUE(t->Append({Value::Null(), Value::Null(), Value::Null(),
                         Value::Null(), Value::Null(), Value::Null()})
                  .ok());
  // Escaping hazards: tabs, newlines, backslashes, the NULL marker.
  ASSERT_TRUE(t->Append({Value::Bool(false), Value::Int64(0),
                         Value::Double(-0.5), Value::String("a\tb\nc\\d\\N"),
                         Value::Timestamp(0), Value::Interval(-9)})
                  .ok());

  ASSERT_TRUE(SaveDatabase(db, dir_).ok());
  Database loaded;
  ASSERT_TRUE(LoadDatabase(dir_, &loaded).ok());
  const Table* lt = loaded.GetTable("mix");
  ASSERT_NE(lt, nullptr);
  ASSERT_EQ(lt->num_rows(), 3u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 6; ++c) {
      EXPECT_TRUE(lt->row(r)[c].DistinctEquals(t->row(r)[c]))
          << "row " << r << " col " << c;
    }
  }
  EXPECT_EQ(lt->row(2)[3].string_value(), "a\tb\nc\\d\\N");
}

TEST_F(PersistTest, MultipleTables) {
  Database db;
  Schema a;
  a.AddColumn("x", DataType::kInt64);
  Table* ta = db.CreateTable("alpha", a).value();
  ASSERT_TRUE(ta->Append({Value::Int64(1)}).ok());
  Schema b;
  b.AddColumn("y", DataType::kString);
  Table* tb = db.CreateTable("beta", b).value();
  ASSERT_TRUE(tb->Append({Value::String("hi")}).ok());

  ASSERT_TRUE(SaveDatabase(db, dir_).ok());
  Database loaded;
  ASSERT_TRUE(LoadDatabase(dir_, &loaded).ok());
  EXPECT_EQ(loaded.TableNames().size(), 2u);
  EXPECT_EQ(loaded.GetTable("alpha")->num_rows(), 1u);
  EXPECT_EQ(loaded.GetTable("beta")->row(0)[0].string_value(), "hi");
}

TEST_F(PersistTest, LoadErrors) {
  Database db;
  EXPECT_EQ(LoadDatabase(dir_ + "/nope", &db).code(), StatusCode::kNotFound);
  // Corrupt manifest.
  std::filesystem::create_directories(dir_);
  FILE* f = fopen((dir_ + "/MANIFEST").c_str(), "w");
  fputs("not a db\n", f);
  fclose(f);
  EXPECT_EQ(LoadDatabase(dir_, &db).code(), StatusCode::kInvalidArgument);
}

TEST_F(PersistTest, LoadIntoExistingTableFails) {
  Database db;
  Schema a;
  a.AddColumn("x", DataType::kInt64);
  ASSERT_TRUE(db.CreateTable("alpha", a).ok());
  ASSERT_TRUE(SaveDatabase(db, dir_).ok());
  EXPECT_EQ(LoadDatabase(dir_, &db).code(), StatusCode::kAlreadyExists);
}

TEST_F(PersistTest, RfidDatabaseRoundTripsAndQueries) {
  Database db;
  rfidgen::GeneratorOptions gen;
  gen.num_pallets = 3;
  gen.min_cases_per_pallet = 2;
  gen.max_cases_per_pallet = 3;
  gen.num_stores = 10;
  gen.num_warehouses = 5;
  gen.num_dcs = 2;
  gen.locations_per_site = 4;
  ASSERT_TRUE(rfidgen::Generate(gen, &db).ok());
  ASSERT_TRUE(SaveDatabase(db, dir_).ok());

  Database loaded;
  ASSERT_TRUE(LoadDatabase(dir_, &loaded).ok());
  ASSERT_TRUE(rfidgen::FinalizeDatabase(&loaded).ok());
  auto before = ExecuteSql(db, "SELECT count(*) FROM caseR");
  auto after = ExecuteSql(loaded, "SELECT count(*) FROM caseR");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->rows[0][0].int64_value(), after->rows[0][0].int64_value());
  // Indexes rebuilt: a range query works on the loaded copy.
  auto ranged = ExecuteSql(
      loaded, "SELECT count(*) FROM caseR WHERE rtime >= TIMESTAMP 0");
  ASSERT_TRUE(ranged.ok());
  EXPECT_EQ(ranged->rows[0][0].int64_value(), after->rows[0][0].int64_value());
}

// Crash-safety of SaveDatabase: every file lands via temp + atomic
// rename, so failing at *any* injection step mid-save must leave the
// directory fully loadable — each table file is either the complete old
// version or the complete new one, never a truncated hybrid.
TEST_F(PersistTest, CrashMidSaveNeverClobbersPreviousDump) {
  Database db;
  Schema s;
  s.AddColumn("x", DataType::kInt64);
  s.AddColumn("label", DataType::kString);
  Table* data = db.CreateTable("data", s).value();
  Schema s2;
  s2.AddColumn("y", DataType::kString);
  Table* aux = db.CreateTable("aux", s2).value();

  auto fill = [&](int from, int to, const char* tag) {
    for (int i = from; i < to; ++i) {
      ASSERT_TRUE(data->Append({Value::Int64(i),
                                Value::String(std::string(tag) + "-" +
                                              std::to_string(i))})
                      .ok());
      ASSERT_TRUE(aux->Append({Value::String(tag)}).ok());
    }
  };
  fill(0, 10, "v1");
  ASSERT_TRUE(SaveDatabase(db, dir_).ok());
  fill(10, 20, "v2");  // the new dump every failing save is attempting

  // Learn the sweep space for one full save.
  uint64_t total_steps = 0;
  {
    std::string count_dir = dir_ + "_count";
    FaultInjector counter = FaultInjector::CountOnly();
    ScopedFaultInjector scope(&counter);
    ASSERT_TRUE(SaveDatabase(db, count_dir).ok());
    total_steps = counter.steps();
    std::filesystem::remove_all(count_dir);
  }
  // 2 tables × (1 persist site + 3 write + fsync + rename) + manifest.
  ASSERT_GE(total_steps, 13u);

  for (uint64_t step = 0; step < total_steps; ++step) {
    Status st;
    FaultInjector injector = FaultInjector::FailAtStep(step);
    {
      ScopedFaultInjector scope(&injector);
      st = SaveDatabase(db, dir_);
    }
    ASSERT_FALSE(st.ok()) << "step " << step << " did not fail";
    ASSERT_TRUE(injector.fired());
    EXPECT_FALSE(st.ToString().empty()) << "unstructured failure";

    Database loaded;
    Status lst = LoadDatabase(dir_, &loaded);
    ASSERT_TRUE(lst.ok()) << "step " << step << " (site "
                          << injector.fired_site()
                          << ") broke the dump: " << lst.ToString();
    for (const char* name : {"data", "aux"}) {
      const Table* t = loaded.GetTable(name);
      ASSERT_NE(t, nullptr) << "step " << step;
      EXPECT_TRUE(t->num_rows() == 10u || t->num_rows() == 20u)
          << "step " << step << " left " << name << " with " << t->num_rows()
          << " rows — a torn table file";
    }
    // Whichever version of "data" survived, its last row is intact.
    const Table* t = loaded.GetTable("data");
    const Row& last = t->row(t->num_rows() - 1);
    EXPECT_EQ(last[1].string_value(),
              (t->num_rows() == 10u ? "v1-9" : "v2-19"))
        << "step " << step;
  }

  // With no injector the save completes and the new dump loads whole.
  ASSERT_TRUE(SaveDatabase(db, dir_).ok());
  Database final_loaded;
  ASSERT_TRUE(LoadDatabase(dir_, &final_loaded).ok());
  EXPECT_EQ(final_loaded.GetTable("data")->num_rows(), 20u);
  EXPECT_EQ(final_loaded.GetTable("aux")->num_rows(), 20u);
}

// The TSV row codec is shared with the WAL: round-trip every value type
// through SerializeRowTsv/ParseRowTsv directly.
TEST_F(PersistTest, RowTsvCodecRoundTrips) {
  Schema s;
  s.AddColumn("b", DataType::kBool);
  s.AddColumn("i", DataType::kInt64);
  s.AddColumn("d", DataType::kDouble);
  s.AddColumn("str", DataType::kString);
  s.AddColumn("ts", DataType::kTimestamp);
  s.AddColumn("iv", DataType::kInterval);
  Row original = {Value::Bool(true),          Value::Int64(-7),
                  Value::Double(0.125),       Value::String("t\tn\\n\\N"),
                  Value::Timestamp(Minutes(3)), Value::Interval(-2)};
  auto parsed = ParseRowTsv(SerializeRowTsv(original), s);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), original.size());
  for (size_t c = 0; c < original.size(); ++c) {
    EXPECT_TRUE((*parsed)[c].DistinctEquals(original[c])) << "col " << c;
  }
  // Arity mismatches are structured errors, not crashes.
  EXPECT_EQ(ParseRowTsv("1\t2", s).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rfid
