// Tests for the conservative rule-commutativity analysis, including an
// empirical check: when the analysis says kCommute, applying the two
// rules in either order over random data must give identical results —
// and the Section 4.4 counterexample must come back kUnknown.
#include <gtest/gtest.h>

#include <algorithm>

#include "cleansing/chain.h"
#include "cleansing/commute.h"
#include "cleansing/rule_parser.h"
#include "common/random.h"
#include "common/time_util.h"
#include "plan/planner.h"

namespace rfid {
namespace {

CleansingRule MustParse(const std::string& text) {
  auto r = ParseRule(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : CleansingRule{};
}

const char* kCycle =
    "DEFINE cycle ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B, C) "
    "WHERE A.biz_loc = C.biz_loc AND A.biz_loc <> B.biz_loc ACTION DELETE B";
const char* kDup =
    "DEFINE dup ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
    "WHERE A.biz_loc = B.biz_loc ACTION DELETE B";
const char* kFlagLate =
    "DEFINE flag_late ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
    "WHERE B.rtime - A.rtime > 60 MINUTES ACTION MODIFY A.late_next = 1";
const char* kFlagReader =
    "DEFINE flag_reader ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) "
    "WHERE B.reader = 'readerX' ACTION MODIFY A.sees_forklift = 1";

TEST(CommuteTest, Section44DeleteRulesAreUnknown) {
  EXPECT_EQ(RulesCommute(MustParse(kCycle), MustParse(kDup)),
            CommuteVerdict::kUnknown);
}

TEST(CommuteTest, DisjointModifyRulesCommute) {
  EXPECT_EQ(RulesCommute(MustParse(kFlagLate), MustParse(kFlagReader)),
            CommuteVerdict::kCommute);
}

TEST(CommuteTest, OverlappingAssignmentsUnknown) {
  CleansingRule other = MustParse(
      "DEFINE f2 ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE B.reader = 'r9' ACTION MODIFY A.late_next = 2");
  EXPECT_EQ(RulesCommute(MustParse(kFlagLate), other), CommuteVerdict::kUnknown);
}

TEST(CommuteTest, ReadingTheOthersWriteIsUnknown) {
  CleansingRule reads_flag = MustParse(
      "DEFINE f3 ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE B.late_next = 1 ACTION MODIFY A.derived = 1");
  EXPECT_EQ(RulesCommute(MustParse(kFlagLate), reads_flag),
            CommuteVerdict::kUnknown);
}

TEST(CommuteTest, AssigningAKeyIsUnknown) {
  CleansingRule shifts_time = MustParse(
      "DEFINE f4 ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE B.reader = 'r1' ACTION MODIFY A.rtime = A.rtime + 1 MINUTES");
  EXPECT_EQ(RulesCommute(shifts_time, MustParse(kFlagReader)),
            CommuteVerdict::kUnknown);
}

TEST(CommuteTest, ModifyWithTimeConstraintStillCommutes) {
  // Different conditions over shared *read* columns are fine; only
  // read-write overlap matters.
  CleansingRule a = MustParse(
      "DEFINE fa ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE A.biz_loc = B.biz_loc ACTION MODIFY A.x = 1");
  CleansingRule b = MustParse(
      "DEFINE fb ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE A.biz_loc <> B.biz_loc ACTION MODIFY A.y = 1");
  EXPECT_EQ(RulesCommute(a, b), CommuteVerdict::kCommute);
}

// Empirical validation: for rules the analysis declares commuting, both
// orders must yield identical cleansed relations on random data.
TEST(CommuteTest, CommutingVerdictHoldsEmpirically) {
  for (uint64_t seed : {3u, 17u, 99u}) {
    Database db;
    Schema reads;
    reads.AddColumn("epc", DataType::kString);
    reads.AddColumn("rtime", DataType::kTimestamp);
    reads.AddColumn("reader", DataType::kString);
    reads.AddColumn("biz_loc", DataType::kString);
    Table* case_r = db.CreateTable("caseR", reads).value();
    Random rng(seed);
    const char* readers[] = {"r1", "readerX"};
    const char* locs[] = {"a", "b"};
    for (int e = 0; e < 5; ++e) {
      int64_t t = 0;
      for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(case_r
                        ->Append({Value::String("e" + std::to_string(e)),
                                  Value::Timestamp(t),
                                  Value::String(readers[rng.Uniform(2)]),
                                  Value::String(locs[rng.Uniform(2)])})
                        .ok());
        t += Minutes(10 + static_cast<int64_t>(rng.Uniform(120)));
      }
    }

    auto run_order = [&](const std::vector<const char*>& defs) {
      CleansingRuleEngine engine(&db);
      for (const char* d : defs) {
        Status st = engine.DefineRule(d);
        EXPECT_TRUE(st.ok()) << st.ToString();
      }
      std::vector<const CleansingRule*> rules;
      for (const CleansingRule& r : engine.rules()) rules.push_back(&r);
      EXPECT_EQ(RulesCommute(*rules[0], *rules[1]), CommuteVerdict::kCommute);
      auto chain = BuildCleansingChain(rules, db, "__input",
                                       case_r->schema().columns());
      EXPECT_TRUE(chain.ok());
      std::string sql = "WITH __input AS (SELECT * FROM caseR)";
      for (const auto& [name, body] : chain->with_clauses) {
        sql += ", " + name + " AS (" + body + ")";
      }
      sql += " SELECT epc, rtime, late_next, sees_forklift FROM " +
             chain->output_name;
      auto res = ExecuteSql(db, sql);
      EXPECT_TRUE(res.ok()) << res.status().ToString();
      std::vector<std::string> rows;
      for (const Row& r : res->rows) {
        std::string s;
        for (const Value& v : r) s += v.ToString() + "|";
        rows.push_back(std::move(s));
      }
      std::sort(rows.begin(), rows.end());
      return rows;
    };

    auto ab = run_order({kFlagLate, kFlagReader});
    auto ba = run_order({kFlagReader, kFlagLate});
    EXPECT_EQ(ab, ba) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rfid
