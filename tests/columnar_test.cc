// Columnar cold-segment correctness: every encoding must round-trip
// rows *bit-identically* (doubles by bit pattern, so NaN payloads and
// -0.0 survive), encoded-predicate evaluation must agree with the row
// interpreter for all six comparison operators at every SIMD dispatch
// level, zone-map skipping must never change results (and must shut off
// while fault injection is active, mirroring the ChooseDop rule),
// serialization must reject corrupt input instead of crashing, and a
// WAL checkpoint must persist encoded segments so a recovered server
// scans columnar without re-encoding.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/string_util.h"
#include "exec/parallel.h"
#include "expr/row_batch.h"
#include "ingest/ingest.h"
#include "plan/planner.h"
#include "rewrite/rewriter.h"
#include "rfidgen/anomaly.h"
#include "rfidgen/rfidgen.h"
#include "rfidgen/stream.h"
#include "rfidgen/workload.h"
#include "storage/columnar.h"
#include "wal/wal_manager.h"

namespace rfid {
namespace {

using ingest::IngestPipeline;
using ingest::TableBatch;
using rfidgen::ReadStream;
using rfidgen::StreamBatch;
using rfidgen::StreamOptions;
using wal::WalManager;

// Bit-exact equality: the round-trip contract is stronger than
// Value::Compare (which collapses -0.0 == 0.0 and has no NaN order).
bool BitEq(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case DataType::kNull:
      return true;
    case DataType::kString:
      return a.string_value() == b.string_value();
    case DataType::kDouble: {
      uint64_t ab, bb;
      double ad = a.double_value(), bd = b.double_value();
      std::memcpy(&ab, &ad, sizeof(ab));
      std::memcpy(&bb, &bd, sizeof(bb));
      return ab == bb;
    }
    default:
      return a.int64_value() == b.int64_value();
  }
}

std::vector<std::string> Exact(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& r : rows) {
    std::string s;
    for (const Value& v : r) s += v.ToString() + "|";
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::string> RunExact(Database& db, const std::string& sql) {
  auto res = ExecuteSql(db, sql);
  EXPECT_TRUE(res.ok()) << sql << "\n" << res.status().ToString();
  return res.ok() ? Exact(res->rows) : std::vector<std::string>{};
}

void ExpectSegmentRoundTrip(const RowStore& store, uint64_t base,
                            uint32_t num_rows, size_t ncols,
                            const char* label) {
  EncodedSegmentPtr seg = EncodeSegment(store, base, num_rows, ncols);
  ASSERT_NE(seg, nullptr) << label;
  ASSERT_EQ(seg->columns.size(), ncols) << label;
  ASSERT_EQ(seg->zones.size(), ncols) << label;
  Row decoded;
  for (uint32_t i = 0; i < num_rows; ++i) {
    const Row& want = store.row(base + i);
    for (size_t c = 0; c < ncols; ++c) {
      Value got = DecodeValueAt(seg->columns[c], i);
      EXPECT_TRUE(BitEq(got, want[c]))
          << label << ": col " << c << " row " << i << ": decoded "
          << got.ToString() << " want " << want[c].ToString();
    }
    DecodeRowInto(*seg, i, &decoded);
    ASSERT_EQ(decoded.size(), ncols) << label;
    for (size_t c = 0; c < ncols; ++c) {
      EXPECT_TRUE(BitEq(decoded[c], want[c])) << label << ": row " << i;
    }
  }
}

class ColumnarTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetColumnarForTest(-1);
    SetVectorizedForTest(-1);
    SetBatchCapacityForTest(0);
    SetParallelPolicyForTest(0, 0);
    simd::SetLevelForTest(-1);
  }
};

// ---------------------------------------------------------------------
// Encoding round-trips: decode(encode(x)) == x, bit for bit.
// ---------------------------------------------------------------------

TEST_F(ColumnarTest, RoundTripAdversarialProfiles) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  RowStore store;
  const uint32_t n = 512;
  for (uint32_t i = 0; i < n; ++i) {
    Row r;
    // 0: small-range ints (bit-pack).
    r.push_back(Value::Int64(static_cast<int64_t>(i % 7)));
    // 1: small-range ints with nulls (bit-pack null bitmap).
    r.push_back(i % 5 == 0 ? Value::Null()
                           : Value::Int64(static_cast<int64_t>(i % 3) - 1));
    // 2: extreme ints (plain; delta range overflows any pack width).
    r.push_back(Value::Int64(i % 2 == 0 ? std::numeric_limits<int64_t>::min()
                                        : std::numeric_limits<int64_t>::max()));
    // 3: low-cardinality strings (dict), with empty string as a value.
    r.push_back(Value::String(i % 4 == 0 ? "" : StrFormat("loc%u", i % 3)));
    // 4: all-distinct strings.
    r.push_back(Value::String(StrFormat("epc-%06u", i)));
    // 5: long runs (RLE).
    r.push_back(Value::Timestamp(static_cast<int64_t>(i / 100)));
    // 6: all NULL.
    r.push_back(Value::Null());
    // 7: single value everywhere.
    r.push_back(Value::Int64(42));
    // 8: doubles with NaN, -0.0 and 0.0 (bit patterns must survive).
    r.push_back(i % 11 == 0 ? Value::Double(nan)
                            : Value::Double(i % 2 == 0 ? -0.0 : 0.0));
    // 9: mixed tags in one column (plain fallback).
    r.push_back(i % 3 == 0 ? Value::Int64(static_cast<int64_t>(i))
                           : Value::String("mixed"));
    // 10: bools and intervals (int64 family coverage).
    r.push_back(i % 2 == 0 ? Value::Bool(i % 4 == 0)
                           : Value::Interval(static_cast<int64_t>(i) * 1000));
    ASSERT_TRUE(store.PushBack(std::move(r)).ok());
  }
  store.PublishVisible();
  ExpectSegmentRoundTrip(store, 0, n, 11, "adversarial");

  // Zone maps over the tricky columns must refuse to prune: NaN doubles
  // (8) and mixed tags (9) have no total order, all-NULL (6) has no
  // min/max.
  EncodedSegmentPtr seg = EncodeSegment(store, 0, n, 11);
  EXPECT_FALSE(seg->zones[6].prunable);
  EXPECT_FALSE(seg->zones[8].prunable);
  EXPECT_FALSE(seg->zones[9].prunable);
  EXPECT_TRUE(seg->zones[0].prunable);
  EXPECT_EQ(seg->zones[6].null_count, n);
}

TEST_F(ColumnarTest, RoundTripRandomized) {
  Random rng(20060912);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int iter = 0; iter < 20; ++iter) {
    const uint32_t n = static_cast<uint32_t>(rng.UniformRange(1, 2048));
    const size_t ncols = static_cast<size_t>(rng.UniformRange(1, 4));
    std::vector<int> profile(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      profile[c] = static_cast<int>(rng.Uniform(8));
    }
    RowStore store;
    for (uint32_t i = 0; i < n; ++i) {
      Row r;
      for (size_t c = 0; c < ncols; ++c) {
        if (rng.Uniform(10) == 0) {
          r.push_back(Value::Null());
          continue;
        }
        switch (profile[c]) {
          case 0:
            r.push_back(Value::Int64(rng.UniformRange(-5, 5)));
            break;
          case 1:
            r.push_back(Value::Int64(static_cast<int64_t>(rng.Next())));
            break;
          case 2:
            r.push_back(Value::String(
                StrFormat("s%lld", static_cast<long long>(rng.Uniform(4)))));
            break;
          case 3:
            r.push_back(Value::String(
                StrFormat("u%llu", static_cast<unsigned long long>(rng.Next()))));
            break;
          case 4:
            r.push_back(Value::Timestamp(rng.UniformRange(0, 3)));
            break;
          case 5:
            r.push_back(rng.Uniform(7) == 0
                            ? Value::Double(nan)
                            : Value::Double(static_cast<double>(
                                  rng.UniformRange(-100, 100)) / 8.0));
            break;
          case 6:
            r.push_back(Value::Bool(rng.Uniform(2) == 0));
            break;
          default:
            r.push_back(Value::Int64(rng.UniformRange(0, 1)));
            break;
        }
      }
      ASSERT_TRUE(store.PushBack(std::move(r)).ok());
    }
    store.PublishVisible();
    std::string label = StrFormat("iter %d (n=%u)", iter, n);
    ExpectSegmentRoundTrip(store, 0, n, ncols, label.c_str());
  }
}

TEST_F(ColumnarTest, SerializationRoundTripAndCorruptInput) {
  RowStore store;
  for (uint32_t i = 0; i < 300; ++i) {
    Row r;
    r.push_back(Value::Int64(i % 9));
    r.push_back(Value::String(StrFormat("g%u", i % 5)));
    r.push_back(i % 7 == 0 ? Value::Null() : Value::Timestamp(i / 50));
    ASSERT_TRUE(store.PushBack(std::move(r)).ok());
  }
  store.PublishVisible();
  EncodedSegmentPtr seg = EncodeSegment(store, 0, 300, 3);

  std::string bytes;
  AppendSegmentBytes(*seg, &bytes);
  size_t offset = 0;
  auto parsed = ParseSegmentBytes(bytes, &offset);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(offset, bytes.size());
  ASSERT_EQ((*parsed)->num_rows, seg->num_rows);
  for (uint32_t i = 0; i < seg->num_rows; ++i) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_TRUE(BitEq(DecodeValueAt((*parsed)->columns[c], i),
                        DecodeValueAt(seg->columns[c], i)))
          << "row " << i << " col " << c;
    }
  }

  // Every truncation must fail cleanly (error status, no UB — the ASan
  // configuration of this suite is the point).
  for (size_t cut = 0; cut < bytes.size(); cut += 97) {
    size_t off = 0;
    auto r = ParseSegmentBytes(std::string_view(bytes.data(), cut), &off);
    EXPECT_FALSE(r.ok()) << "parsed a " << cut << "-byte prefix";
  }
}

// ---------------------------------------------------------------------
// Encoded predicates == interpreter, for all six operators, all
// encodings, every SIMD dispatch level.
// ---------------------------------------------------------------------

// A table whose four columns land in the four encodings (plus nulls and
// NaN), big enough for two cold segments and a hot row-store tail.
std::unique_ptr<Database> MakeEncodedDb(size_t nrows = 5000) {
  auto db = std::make_unique<Database>();
  Schema schema;
  schema.AddColumn("i", DataType::kInt64);       // bit-pack
  schema.AddColumn("s", DataType::kString);      // dict
  schema.AddColumn("ts", DataType::kTimestamp);  // rle (long runs)
  schema.AddColumn("d", DataType::kDouble);      // plain (NaN present)
  auto t = db->CreateTable("enc", schema);
  EXPECT_TRUE(t.ok());
  Random rng(7);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (size_t i = 0; i < nrows; ++i) {
    Row r;
    r.push_back(i % 31 == 0 ? Value::Null()
                            : Value::Int64(rng.UniformRange(0, 99)));
    r.push_back(Value::String(
        StrFormat("loc%02lld", static_cast<long long>(rng.Uniform(20)))));
    r.push_back(Value::Timestamp(static_cast<int64_t>(i / 400)));
    r.push_back(i % 97 == 0 ? Value::Double(nan)
                            : Value::Double(static_cast<double>(
                                  rng.UniformRange(-50, 50)) / 4.0));
    (*t)->AppendUnchecked(std::move(r));
  }
  SetColumnarForTest(1);
  (*t)->EncodeColdSegments();
  SetColumnarForTest(-1);
  return db;
}

TEST_F(ColumnarTest, EncodedPredicatesMatchInterpreterAllOps) {
  auto db = MakeEncodedDb();
  const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
  std::vector<std::string> predicates;
  for (const char* op : ops) {
    // Bit-packed ints: literal inside, below, above the domain.
    predicates.push_back(StrFormat("i %s 42", op));
    predicates.push_back(StrFormat("i %s -1", op));
    predicates.push_back(StrFormat("i %s 1000", op));
    // Dict strings: present, absent-in-range, below-all, above-all.
    predicates.push_back(StrFormat("s %s 'loc07'", op));
    predicates.push_back(StrFormat("s %s 'loc07x'", op));
    predicates.push_back(StrFormat("s %s 'aaa'", op));
    predicates.push_back(StrFormat("s %s 'zzz'", op));
    // RLE timestamps: run boundaries.
    predicates.push_back(StrFormat("ts %s TIMESTAMP 6", op));
    // Doubles with NaN present (zone maps must not prune).
    predicates.push_back(StrFormat("d %s 0.25", op));
  }
  // Conjunctions: sargable + sargable, and sargable + residual.
  predicates.push_back("i <= 40 AND s = 'loc03'");
  predicates.push_back("i >= 10 AND ts < TIMESTAMP 9 AND i + 0 >= 10");

  for (const std::string& pred : predicates) {
    std::string sql = "SELECT i, s, ts, d FROM enc WHERE " + pred;
    SetColumnarForTest(0);
    std::vector<std::string> want = RunExact(*db, sql);
    SetColumnarForTest(1);
    for (int level : {0, 1, 2}) {
      simd::SetLevelForTest(level);
      EXPECT_EQ(RunExact(*db, sql), want)
          << sql << " (simd level " << level << ")";
    }
    simd::SetLevelForTest(-1);
    // Row-at-a-time NextImpl path over encoded segments.
    SetVectorizedForTest(0);
    EXPECT_EQ(RunExact(*db, sql), want) << sql << " (row engine)";
    SetVectorizedForTest(-1);
    // Morsel-parallel workers over encoded segments.
    SetParallelPolicyForTest(4, 64);
    EXPECT_EQ(RunExact(*db, sql), want) << sql << " (parallel)";
    SetParallelPolicyForTest(0, 0);
    SetColumnarForTest(-1);
  }
}

TEST_F(ColumnarTest, ComparisonAgainstNullLiteralEmitsNothing) {
  auto db = MakeEncodedDb(1000);
  SetColumnarForTest(1);
  EXPECT_TRUE(RunExact(*db, "SELECT i FROM enc WHERE i < NULL").empty());
  SetColumnarForTest(0);
  EXPECT_TRUE(RunExact(*db, "SELECT i FROM enc WHERE i < NULL").empty());
}

TEST_F(ColumnarTest, MutationInvalidatesEncodings) {
#ifdef RFID_COLUMNAR_OFF
  GTEST_SKIP() << "built with RFID_COLUMNAR=OFF";
#endif
  auto db = MakeEncodedDb();
  Table* t = db->GetTable("enc");
  ASSERT_GT(t->columnar().encoded_segments(), 0u);

  SetColumnarForTest(1);
  std::string sql = "SELECT i, s FROM enc WHERE i <= 3";
  std::vector<std::string> before = RunExact(*db, sql);

  // In-place mutation (the cleansing engine's UPDATE path) must drop
  // every encoded segment; results reflect the new value immediately.
  t->mutable_row(0)[0] = Value::Int64(3);
  t->mutable_row(0)[1] = Value::String("patched");
  EXPECT_EQ(t->columnar().encoded_segments(), 0u);
  std::vector<std::string> after = RunExact(*db, sql);
  EXPECT_NE(before, after);
  SetColumnarForTest(0);
  EXPECT_EQ(RunExact(*db, sql), after);
}

// ---------------------------------------------------------------------
// Zone-map skipping: surfaced in EXPLAIN, never under fault injection.
// ---------------------------------------------------------------------

TEST_F(ColumnarTest, ZoneMapSkippingSurfacedInExplain) {
#ifdef RFID_COLUMNAR_OFF
  GTEST_SKIP() << "built with RFID_COLUMNAR=OFF";
#endif
  auto db = MakeEncodedDb();  // ts is monotonic: 0..12 across 5000 rows
  SetColumnarForTest(1);
  // ts >= 10 excludes both cold segments (rows 0..4095 have ts <= 10;
  // segment zones carry ts maxima 5 and 10).
  std::string sql = "SELECT ts FROM enc WHERE ts > TIMESTAMP 10";
  ColumnarCounters before = GlobalColumnarCounters();
  auto res = ExecuteSql(*db, sql);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ColumnarCounters after = GlobalColumnarCounters();
  EXPECT_NE(res->explain.find("segments: skipped=2/2"), std::string::npos)
      << res->explain;
  EXPECT_NE(res->explain.find("enc="), std::string::npos) << res->explain;
  EXPECT_GE(after.segments_skipped - before.segments_skipped, 2u);

  SetColumnarForTest(0);
  EXPECT_EQ(Exact(res->rows), RunExact(*db, sql));

  // A predicate that keeps every segment reports scanned, not skipped.
  SetColumnarForTest(1);
  auto all = ExecuteSql(*db, "SELECT ts FROM enc WHERE ts >= TIMESTAMP 0");
  ASSERT_TRUE(all.ok());
  EXPECT_NE(all->explain.find("segments: skipped=0/2"), std::string::npos)
      << all->explain;
  // EXPLAIN header advertises the engine + dispatch level.
  EXPECT_NE(all->explain.find(StrFormat("columnar: on (simd=%s)",
                                        simd::ActiveLevelName())),
            std::string::npos)
      << all->explain;
}

TEST_F(ColumnarTest, FaultInjectionDisablesZoneSkipping) {
#ifdef RFID_COLUMNAR_OFF
  GTEST_SKIP() << "built with RFID_COLUMNAR=OFF";
#endif
  auto db = MakeEncodedDb();
  SetColumnarForTest(1);
  std::string sql = "SELECT ts FROM enc WHERE ts > TIMESTAMP 10";
  std::vector<std::string> want = RunExact(*db, sql);

  // Mirror of the ChooseDop rule: a fault sweep must cross every step
  // the unfaulted engine would take, so segment skipping shuts off and
  // every segment is visited.
  FaultInjector counter = FaultInjector::CountOnly();
  {
    ScopedFaultInjector scope(&counter);
    auto res = ExecuteSql(*db, sql);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(Exact(res->rows), want);
    EXPECT_NE(res->explain.find("segments: skipped=0/2"), std::string::npos)
        << "zone skipping ran under fault injection:\n" << res->explain;
  }
}

// ---------------------------------------------------------------------
// End-to-end bit-identity: rewrite strategies x engines x batch sizes,
// columnar on vs off, under live ingest.
// ---------------------------------------------------------------------

class ColumnarQueryTest : public ColumnarTest {
 protected:
  void SetUp() override {
    rfidgen::GeneratorOptions gen;
    gen.num_pallets = 8;
    gen.min_cases_per_pallet = 3;
    gen.max_cases_per_pallet = 6;
    gen.reads_per_site = 5;
    gen.num_stores = 30;
    gen.num_warehouses = 10;
    gen.num_dcs = 5;
    gen.locations_per_site = 10;
    auto g = rfidgen::Generate(gen, &db_);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    rfidgen::AnomalyOptions anomalies;
    anomalies.dirty_fraction = 0.15;
    auto a = rfidgen::InjectAnomalies(anomalies, &db_);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    engine_ = std::make_unique<CleansingRuleEngine>(&db_);
    for (const std::string& def : workload::StandardRuleDefinitions(3)) {
      ASSERT_TRUE(engine_->DefineRule(def).ok());
    }
    rewriter_ = std::make_unique<QueryRewriter>(&db_, engine_.get());
  }

  std::string Rewrite(const std::string& sql, RewriteStrategy strategy) {
    RewriteOptions opts;
    opts.strategy = strategy;
    auto r = rewriter_->Rewrite(sql, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->sql : std::string();
  }

  Database db_;
  std::unique_ptr<CleansingRuleEngine> engine_;
  std::unique_ptr<QueryRewriter> rewriter_;
};

TEST_F(ColumnarQueryTest, BitIdenticalAcrossStrategiesEnginesAndBatches) {
  std::string q1 = workload::Q1(workload::T1ForSelectivity(db_, 0.5));
  std::string q2 = workload::Q2(workload::T2ForSelectivity(db_, 0.5), "dc2");
  for (RewriteStrategy strategy :
       {RewriteStrategy::kNaive, RewriteStrategy::kExpanded,
        RewriteStrategy::kJoinBack}) {
    for (const std::string& base : {q1, q2}) {
      std::string sql = Rewrite(base, strategy);
      SetColumnarForTest(0);
      std::vector<std::string> want = RunExact(db_, sql);
      SetColumnarForTest(1);
      for (size_t capacity : {size_t{1}, size_t{7}, size_t{1024}}) {
        SetBatchCapacityForTest(capacity);
        EXPECT_EQ(RunExact(db_, sql), want)
            << "columnar diverged (strategy " << static_cast<int>(strategy)
            << ", batch " << capacity << ")\nsql: " << sql;
      }
      SetBatchCapacityForTest(0);
      SetVectorizedForTest(0);
      EXPECT_EQ(RunExact(db_, sql), want) << "row engine diverged\n" << sql;
      SetVectorizedForTest(-1);
      SetParallelPolicyForTest(4, 64);
      EXPECT_EQ(RunExact(db_, sql), want) << "parallel diverged\n" << sql;
      SetParallelPolicyForTest(0, 0);
      SetColumnarForTest(-1);
    }
  }
}

TEST_F(ColumnarQueryTest, BitIdenticalUnderLiveIngest) {
  // A cold encoded prefix plus a hot row-format tail that grows epoch by
  // epoch: after every published batch the on/off outputs must agree.
  Database db;
  StreamOptions opt;
  opt.seed = 23;
  opt.num_pallets = 150;  // ~32 case reads per pallet: spans 2+ segments
  auto stream = ReadStream::Create(&db, opt);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  IngestPipeline pipeline(&db, nullptr, 8, nullptr);
  SetColumnarForTest(1);

  const std::string sql =
      "SELECT epc, rtime, biz_loc FROM caseR WHERE reader <> 'readerX'";
  for (int epoch = 0; epoch < 6 && !(*stream)->exhausted(); ++epoch) {
    StreamBatch b = (*stream)->NextBatch(700);
    std::vector<TableBatch> group;
    group.push_back({"caseR", std::move(b.case_rows)});
    group.push_back({"palletR", std::move(b.pallet_rows)});
    group.push_back({"parent", std::move(b.parent_rows)});
    group.push_back({"epc_info", std::move(b.info_rows)});
    ASSERT_TRUE(pipeline.Apply(std::move(group)).ok());

    SetColumnarForTest(1);
    std::vector<std::string> on = RunExact(db, sql);
    SetColumnarForTest(0);
    std::vector<std::string> off = RunExact(db, sql);
    EXPECT_EQ(on, off) << "epoch " << epoch;
    SetColumnarForTest(1);
  }
#ifndef RFID_COLUMNAR_OFF
  // Enough epochs landed to cross a segment boundary; the publish hook
  // must have encoded the cold prefix.
  EXPECT_GT(db.GetTable("caseR")->columnar().encoded_segments(), 0u);
#endif
}

// ---------------------------------------------------------------------
// Durability: checkpoints persist encodings; recovery restores them
// without re-encoding; corrupt sidecars degrade to re-encoding.
// ---------------------------------------------------------------------

class ColumnarWalTest : public ColumnarTest {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/rfid_columnar_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    ColumnarTest::TearDown();
    std::filesystem::remove_all(dir_);
  }

  // Feeds `epochs` stream batches of 700 case reads through a WAL-backed
  // pipeline, checkpointing after `checkpoint_after` of them.
  void FeedAndCheckpoint(Database* db, int epochs, int checkpoint_after) {
    StreamOptions opt;
    opt.seed = 47;
    opt.num_pallets = 200;  // ~32 case reads per pallet: spans 3 segments
    auto stream = ReadStream::Create(db, opt);
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    auto manager = WalManager::Open(dir_, db);
    ASSERT_TRUE(manager.ok()) << manager.status().ToString();
    IngestPipeline pipeline(db, nullptr, 8, manager->get());
    for (int i = 0; i < epochs; ++i) {
      ASSERT_FALSE((*stream)->exhausted());
      StreamBatch b = (*stream)->NextBatch(900);
      std::vector<TableBatch> group;
      group.push_back({"caseR", std::move(b.case_rows)});
      group.push_back({"palletR", std::move(b.pallet_rows)});
      group.push_back({"parent", std::move(b.parent_rows)});
      group.push_back({"epc_info", std::move(b.info_rows)});
      ASSERT_TRUE(pipeline.Apply(std::move(group)).ok());
      if (i + 1 == checkpoint_after) {
        ASSERT_TRUE(pipeline.Checkpoint().ok());
      }
    }
  }

  std::string dir_;
};

TEST_F(ColumnarWalTest, RecoveryRestoresEncodedSegmentsWithoutReencoding) {
#ifdef RFID_COLUMNAR_OFF
  GTEST_SKIP() << "built with RFID_COLUMNAR=OFF";
#endif
  SetColumnarForTest(1);
  Database live;
  // Checkpoint after the final epoch: recovery replays nothing, so every
  // encoded segment must come from the sidecar, not a rebuild.
  ASSERT_NO_FATAL_FAILURE(FeedAndCheckpoint(&live, 6, 6));
  Table* live_caser = live.GetTable("caseR");
  ASSERT_GT(live_caser->columnar().encoded_segments(), 0u)
      << "feed too small to produce a cold segment";

  ColumnarCounters before = GlobalColumnarCounters();
  Database recovered;
  auto manager = WalManager::Open(dir_, &recovered);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  ASSERT_TRUE((*manager)->recovery().recovered);
  EXPECT_EQ((*manager)->recovery().replayed_epochs, 0u);
  ColumnarCounters after = GlobalColumnarCounters();

  EXPECT_EQ(after.segments_encoded, before.segments_encoded)
      << "recovery re-encoded segments the sidecar should have restored";
  EXPECT_EQ(recovered.GetTable("caseR")->columnar().encoded_segments(),
            live_caser->columnar().encoded_segments());

  // The recovered server scans columnar (scanned counter moves) and
  // answers bit-identically.
  const std::string sql =
      "SELECT epc, rtime, reader, biz_loc FROM caseR WHERE rtime >= TIMESTAMP 0";
  std::vector<std::string> want = RunExact(live, sql);
  ColumnarCounters s0 = GlobalColumnarCounters();
  EXPECT_EQ(RunExact(recovered, sql), want);
  ColumnarCounters s1 = GlobalColumnarCounters();
  EXPECT_GT(s1.segments_scanned, s0.segments_scanned);
}

TEST_F(ColumnarWalTest, ReplayedEpochsGetEncodedAfterRecovery) {
#ifdef RFID_COLUMNAR_OFF
  GTEST_SKIP() << "built with RFID_COLUMNAR=OFF";
#endif
  SetColumnarForTest(1);
  Database live;
  // Checkpoint halfway: the replayed tail crosses segment boundaries, so
  // recovery must encode the newly-cold segments itself.
  ASSERT_NO_FATAL_FAILURE(FeedAndCheckpoint(&live, 6, 3));

  Database recovered;
  auto manager = WalManager::Open(dir_, &recovered);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  EXPECT_GT((*manager)->recovery().replayed_epochs, 0u);
  EXPECT_EQ(recovered.GetTable("caseR")->columnar().encoded_segments(),
            live.GetTable("caseR")->columnar().encoded_segments());
  const std::string sql =
      "SELECT epc, rtime, reader, biz_loc FROM caseR WHERE reader <> 'readerX'";
  EXPECT_EQ(RunExact(recovered, sql), RunExact(live, sql));
}

TEST_F(ColumnarWalTest, CorruptSidecarDegradesToReencoding) {
#ifdef RFID_COLUMNAR_OFF
  GTEST_SKIP() << "built with RFID_COLUMNAR=OFF";
#endif
  SetColumnarForTest(1);
  Database live;
  ASSERT_NO_FATAL_FAILURE(FeedAndCheckpoint(&live, 6, 6));

  // Damage the COLUMNAR sidecar inside the live checkpoint directory.
  bool corrupted = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (!entry.is_directory()) continue;
    std::string sidecar = entry.path().string() + "/COLUMNAR";
    if (!std::filesystem::exists(sidecar)) continue;
    std::fstream f(sidecar, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\xff');
    corrupted = true;
  }
  ASSERT_TRUE(corrupted) << "no COLUMNAR sidecar found under " << dir_;

  Database recovered;
  auto manager = WalManager::Open(dir_, &recovered);
  ASSERT_TRUE(manager.ok())
      << "corrupt sidecar must not block recovery: "
      << manager.status().ToString();
  // The cache degrades, then the post-replay encode pass rebuilds it.
  EXPECT_EQ(recovered.GetTable("caseR")->columnar().encoded_segments(),
            live.GetTable("caseR")->columnar().encoded_segments());
  const std::string sql =
      "SELECT epc, rtime, reader, biz_loc FROM caseR WHERE reader <> 'readerX'";
  EXPECT_EQ(RunExact(recovered, sql), RunExact(live, sql));
}

TEST_F(ColumnarWalTest, MissingSidecarIsNotAnError) {
  Database db;
  Status st = LoadColumnarSidecar(dir_ + "/definitely-missing", &db);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace rfid
