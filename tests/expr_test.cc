// Unit tests for the expression AST, binder/evaluator, conjunct surgery,
// and interval analysis.
#include <gtest/gtest.h>

#include "common/time_util.h"
#include "expr/conjunct.h"
#include "expr/eval.h"
#include "expr/interval.h"

namespace rfid {
namespace {

RowDesc TwoColDesc() {
  RowDesc d;
  d.AddField("t", "a", DataType::kInt64);
  d.AddField("t", "b", DataType::kInt64);
  d.AddField("t", "name", DataType::kString);
  d.AddField("t", "ts", DataType::kTimestamp);
  return d;
}

Result<Value> BindAndEval(const ExprPtr& e, const RowDesc& desc, const Row& row) {
  auto bound = BindExpr(e, desc);
  if (!bound.ok()) return bound.status();
  return EvalExpr(*bound.value(), row);
}

Row SampleRow() {
  return {Value::Int64(3), Value::Int64(10), Value::String("abc"),
          Value::Timestamp(Minutes(30))};
}

TEST(ExprBuildTest, ToSqlRendering) {
  ExprPtr e = MakeBinary(
      BinaryOp::kAnd,
      MakeBinary(BinaryOp::kLt, MakeColumnRef("t", "a"), MakeLiteral(Value::Int64(5))),
      MakeBinary(BinaryOp::kEq, MakeColumnRef("", "name"),
                 MakeLiteral(Value::String("x"))));
  EXPECT_EQ(ExprToSql(e), "t.a < 5 AND name = 'x'");
}

TEST(ExprBuildTest, OrInsideAndParenthesized) {
  ExprPtr lt = MakeBinary(BinaryOp::kLt, MakeColumnRef("", "a"),
                          MakeLiteral(Value::Int64(1)));
  ExprPtr gt = MakeBinary(BinaryOp::kGt, MakeColumnRef("", "a"),
                          MakeLiteral(Value::Int64(5)));
  ExprPtr e = MakeBinary(BinaryOp::kAnd, MakeBinary(BinaryOp::kOr, lt, gt),
                         MakeIsNull(MakeColumnRef("", "b"), true));
  EXPECT_EQ(ExprToSql(e), "(a < 1 OR a > 5) AND b IS NOT NULL");
}

TEST(ExprBuildTest, CloneAndEquals) {
  ExprPtr e = MakeBinary(BinaryOp::kSub, MakeColumnRef("B", "rtime"),
                         MakeColumnRef("A", "rtime"));
  ExprPtr c = CloneExpr(e);
  EXPECT_TRUE(ExprEquals(e, c));
  c->children[0] = MakeColumnRef("C", "rtime");
  EXPECT_FALSE(ExprEquals(e, c));
  // Case-insensitive identifier equality.
  ExprPtr e2 = MakeBinary(BinaryOp::kSub, MakeColumnRef("b", "RTIME"),
                          MakeColumnRef("a", "rtime"));
  EXPECT_TRUE(ExprEquals(e, e2));
}

TEST(BindTest, ResolvesQualifiedAndUnqualified) {
  RowDesc d = TwoColDesc();
  auto bound = BindExpr(MakeColumnRef("t", "b"), d);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound.value()->slot, 1);
  EXPECT_EQ(bound.value()->result_type, DataType::kInt64);
  bound = BindExpr(MakeColumnRef("", "name"), d);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound.value()->slot, 2);
  EXPECT_FALSE(BindExpr(MakeColumnRef("t", "zz"), d).ok());
  EXPECT_FALSE(BindExpr(MakeColumnRef("u", "a"), d).ok());
}

TEST(BindTest, AmbiguityIsAnError) {
  RowDesc d;
  d.AddField("x", "id", DataType::kInt64);
  d.AddField("y", "id", DataType::kInt64);
  EXPECT_FALSE(BindExpr(MakeColumnRef("", "id"), d).ok());
  EXPECT_TRUE(BindExpr(MakeColumnRef("x", "id"), d).ok());
}

TEST(BindTest, TimestampArithmeticTypes) {
  RowDesc d = TwoColDesc();
  // ts - ts -> interval
  auto e = BindExpr(MakeBinary(BinaryOp::kSub, MakeColumnRef("", "ts"),
                               MakeColumnRef("", "ts")),
                    d);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->result_type, DataType::kInterval);
  // ts + interval -> ts
  e = BindExpr(MakeBinary(BinaryOp::kAdd, MakeColumnRef("", "ts"),
                          MakeLiteral(Value::Interval(Minutes(5)))),
               d);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->result_type, DataType::kTimestamp);
  // ts + int is a type error
  e = BindExpr(MakeBinary(BinaryOp::kAdd, MakeColumnRef("", "ts"),
                          MakeLiteral(Value::Int64(5))),
               d);
  EXPECT_FALSE(e.ok());
  // comparing string with int is a type error
  e = BindExpr(MakeBinary(BinaryOp::kEq, MakeColumnRef("", "name"),
                          MakeLiteral(Value::Int64(5))),
               d);
  EXPECT_FALSE(e.ok());
}

TEST(EvalTest, ComparisonAndArithmetic) {
  RowDesc d = TwoColDesc();
  Row row = SampleRow();
  auto v = BindAndEval(MakeBinary(BinaryOp::kAdd, MakeColumnRef("", "a"),
                                  MakeColumnRef("", "b")),
                       d, row);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().int64_value(), 13);

  v = BindAndEval(MakeBinary(BinaryOp::kLt, MakeColumnRef("", "a"),
                             MakeColumnRef("", "b")),
                  d, row);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().bool_value());
}

TEST(EvalTest, TimestampMinusTimestamp) {
  RowDesc d;
  d.AddField("", "t1", DataType::kTimestamp);
  d.AddField("", "t2", DataType::kTimestamp);
  Row row = {Value::Timestamp(Minutes(30)), Value::Timestamp(Minutes(12))};
  auto v = BindAndEval(MakeBinary(BinaryOp::kSub, MakeColumnRef("", "t1"),
                                  MakeColumnRef("", "t2")),
                       d, row);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().type(), DataType::kInterval);
  EXPECT_EQ(v.value().interval_value(), Minutes(18));
}

TEST(EvalTest, ThreeValuedLogic) {
  RowDesc d = TwoColDesc();
  Row row = SampleRow();
  row[0] = Value::Null();

  // NULL < 5 is NULL
  auto v = BindAndEval(MakeBinary(BinaryOp::kLt, MakeColumnRef("", "a"),
                                  MakeLiteral(Value::Int64(5))),
                       d, row);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().is_null());

  // NULL AND FALSE is FALSE
  ExprPtr null_cmp = MakeBinary(BinaryOp::kLt, MakeColumnRef("", "a"),
                                MakeLiteral(Value::Int64(5)));
  ExprPtr false_cmp = MakeBinary(BinaryOp::kGt, MakeColumnRef("", "b"),
                                 MakeLiteral(Value::Int64(100)));
  v = BindAndEval(MakeBinary(BinaryOp::kAnd, null_cmp, false_cmp), d, row);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v.value().is_null());
  EXPECT_FALSE(v.value().bool_value());

  // NULL OR TRUE is TRUE
  ExprPtr true_cmp = MakeBinary(BinaryOp::kLt, MakeColumnRef("", "b"),
                                MakeLiteral(Value::Int64(100)));
  v = BindAndEval(MakeBinary(BinaryOp::kOr, null_cmp, true_cmp), d, row);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().bool_value());

  // NOT NULL is NULL
  v = BindAndEval(MakeNot(null_cmp), d, row);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().is_null());

  // IS NULL
  v = BindAndEval(MakeIsNull(MakeColumnRef("", "a"), false), d, row);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().bool_value());
}

TEST(EvalTest, CaseExpression) {
  RowDesc d = TwoColDesc();
  Row row = SampleRow();
  // CASE WHEN a = 3 THEN 'three' ELSE 'other' END
  ExprPtr c = MakeCase(
      {MakeBinary(BinaryOp::kEq, MakeColumnRef("", "a"),
                  MakeLiteral(Value::Int64(3))),
       MakeLiteral(Value::String("three")), MakeLiteral(Value::String("other"))},
      /*has_else=*/true);
  auto v = BindAndEval(c, d, row);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().string_value(), "three");

  row[0] = Value::Int64(4);
  v = BindAndEval(c, d, row);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().string_value(), "other");

  // No ELSE: falls through to NULL.
  ExprPtr c2 = MakeCase({MakeBinary(BinaryOp::kEq, MakeColumnRef("", "a"),
                                    MakeLiteral(Value::Int64(3))),
                         MakeLiteral(Value::String("three"))},
                        /*has_else=*/false);
  v = BindAndEval(c2, d, row);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().is_null());
}

TEST(EvalTest, InList) {
  RowDesc d = TwoColDesc();
  Row row = SampleRow();
  ExprPtr in = MakeInList(MakeColumnRef("", "a"),
                          {MakeLiteral(Value::Int64(1)), MakeLiteral(Value::Int64(3))});
  auto v = BindAndEval(in, d, row);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().bool_value());

  row[0] = Value::Int64(9);
  v = BindAndEval(in, d, row);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v.value().bool_value());
}

TEST(EvalTest, DivisionByZeroYieldsNull) {
  RowDesc d = TwoColDesc();
  Row row = SampleRow();
  row[1] = Value::Int64(0);
  auto v = BindAndEval(MakeBinary(BinaryOp::kDiv, MakeColumnRef("", "a"),
                                  MakeColumnRef("", "b")),
                       d, row);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().is_null());
}

TEST(ConjunctTest, SplitAndCombine) {
  ExprPtr a = MakeBinary(BinaryOp::kLt, MakeColumnRef("", "a"),
                         MakeLiteral(Value::Int64(1)));
  ExprPtr b = MakeBinary(BinaryOp::kGt, MakeColumnRef("", "b"),
                         MakeLiteral(Value::Int64(2)));
  ExprPtr c = MakeBinary(BinaryOp::kEq, MakeColumnRef("", "name"),
                         MakeLiteral(Value::String("x")));
  ExprPtr all = CombineConjuncts({a, b, c});
  auto parts = SplitConjuncts(all);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_TRUE(ExprEquals(parts[0], a));
  EXPECT_TRUE(ExprEquals(parts[2], c));
  // ORs are not split.
  ExprPtr either = CombineDisjuncts({a, b});
  EXPECT_EQ(SplitConjuncts(either).size(), 1u);
  EXPECT_EQ(SplitConjuncts(nullptr).size(), 0u);
  EXPECT_EQ(CombineConjuncts({}), nullptr);
}

TEST(ConjunctTest, QualifierHelpers) {
  ExprPtr e = MakeBinary(BinaryOp::kLt, MakeColumnRef("A", "rtime"),
                         MakeColumnRef("B", "rtime"));
  auto quals = ReferencedQualifiers(e);
  EXPECT_EQ(quals.size(), 2u);
  EXPECT_TRUE(quals.count("a"));
  EXPECT_TRUE(quals.count("b"));
  EXPECT_FALSE(RefersOnlyTo(e, "A"));
  EXPECT_TRUE(References(e, "b"));

  ExprPtr subst = SubstituteQualifier(e, "A", "T");
  EXPECT_EQ(ExprToSql(subst), "T.rtime < B.rtime");
  ExprPtr stripped = StripQualifiers(subst);
  EXPECT_EQ(ExprToSql(stripped), "rtime < rtime");
}

TEST(ConjunctTest, MatchColumnLiteralCmp) {
  ColumnLiteralCmp m;
  ExprPtr e = MakeBinary(BinaryOp::kLt, MakeColumnRef("t", "rtime"),
                         MakeLiteral(Value::Timestamp(Minutes(10))));
  ASSERT_TRUE(MatchColumnLiteralCmp(e, &m));
  EXPECT_EQ(m.op, BinaryOp::kLt);
  EXPECT_EQ(m.literal.timestamp_value(), Minutes(10));

  // Literal on the left flips the comparison.
  ExprPtr f = MakeBinary(BinaryOp::kLt, MakeLiteral(Value::Int64(5)),
                         MakeColumnRef("t", "a"));
  ASSERT_TRUE(MatchColumnLiteralCmp(f, &m));
  EXPECT_EQ(m.op, BinaryOp::kGt);

  // Column-to-column does not match.
  ExprPtr g = MakeBinary(BinaryOp::kLt, MakeColumnRef("t", "a"),
                         MakeColumnRef("t", "b"));
  EXPECT_FALSE(MatchColumnLiteralCmp(g, &m));
}

TEST(ConjunctTest, MatchColumnDifferenceCmp) {
  ColumnDifferenceCmp m;
  // B.rtime - A.rtime < 5 MINUTES
  ExprPtr e = MakeBinary(
      BinaryOp::kLt,
      MakeBinary(BinaryOp::kSub, MakeColumnRef("B", "rtime"),
                 MakeColumnRef("A", "rtime")),
      MakeLiteral(Value::Interval(Minutes(5))));
  ASSERT_TRUE(MatchColumnDifferenceCmp(e, &m));
  EXPECT_EQ(m.left->qualifier, "B");
  EXPECT_EQ(m.right->qualifier, "A");
  EXPECT_EQ(m.op, BinaryOp::kLt);
  EXPECT_EQ(m.offset_micros, Minutes(5));

  // A.rtime < B.rtime (plain column comparison)
  ExprPtr f = MakeBinary(BinaryOp::kLt, MakeColumnRef("A", "rtime"),
                         MakeColumnRef("B", "rtime"));
  ASSERT_TRUE(MatchColumnDifferenceCmp(f, &m));
  EXPECT_EQ(m.left->qualifier, "A");
  EXPECT_EQ(m.offset_micros, 0);

  // A.epc = B.epc
  ExprPtr g = MakeBinary(BinaryOp::kEq, MakeColumnRef("A", "epc"),
                         MakeColumnRef("B", "epc"));
  ASSERT_TRUE(MatchColumnDifferenceCmp(g, &m));
  EXPECT_EQ(m.op, BinaryOp::kEq);

  // Literal-only comparison does not match.
  ExprPtr h = MakeBinary(BinaryOp::kLt, MakeColumnRef("A", "rtime"),
                         MakeLiteral(Value::Timestamp(0)));
  EXPECT_FALSE(MatchColumnDifferenceCmp(h, &m));
}

TEST(IntervalTest, IntersectAndEmpty) {
  ValueInterval iv;
  EXPECT_TRUE(iv.Unconstrained());
  iv.IntersectCmp(BinaryOp::kLt, Value::Int64(10));
  iv.IntersectCmp(BinaryOp::kGe, Value::Int64(5));
  EXPECT_FALSE(iv.Empty());
  EXPECT_EQ(iv.ToString(), "[5, 10)");
  iv.IntersectCmp(BinaryOp::kLt, Value::Int64(5));
  EXPECT_TRUE(iv.Empty());
}

TEST(IntervalTest, EqualityCollapses) {
  ValueInterval iv;
  iv.IntersectCmp(BinaryOp::kEq, Value::Int64(7));
  ExprPtr c = iv.ToConjuncts(MakeColumnRef("t", "a"));
  EXPECT_EQ(ExprToSql(c), "t.a = 7");
}

TEST(IntervalTest, ShiftPreservesStrictness) {
  ValueInterval iv;
  iv.IntersectCmp(BinaryOp::kLe, Value::Timestamp(Minutes(10)));
  // Shift upper bound by a strict +5min (difference bound is strict).
  iv.Shift(0, false, Minutes(5), true);
  ExprPtr c = iv.ToConjuncts(MakeColumnRef("B", "rtime"));
  EXPECT_EQ(ExprToSql(c), "B.rtime < TIMESTAMP " + std::to_string(Minutes(15)));
}

TEST(IntervalTest, UnionHull) {
  ValueInterval a;
  a.IntersectCmp(BinaryOp::kGe, Value::Int64(0));
  a.IntersectCmp(BinaryOp::kLe, Value::Int64(10));
  ValueInterval b;
  b.IntersectCmp(BinaryOp::kGe, Value::Int64(5));
  b.IntersectCmp(BinaryOp::kLe, Value::Int64(20));
  a.UnionHull(b);
  EXPECT_EQ(a.ToString(), "[0, 20]");
  ValueInterval c;  // unconstrained
  a.UnionHull(c);
  EXPECT_TRUE(a.Unconstrained());
}

TEST(IntervalTest, Contains) {
  ValueInterval outer;
  outer.IntersectCmp(BinaryOp::kLt, Value::Int64(100));
  ValueInterval inner;
  inner.IntersectCmp(BinaryOp::kGe, Value::Int64(5));
  inner.IntersectCmp(BinaryOp::kLt, Value::Int64(50));
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
  // Boundary strictness: [5,50) is not contained in (5,50).
  ValueInterval open;
  open.IntersectCmp(BinaryOp::kGt, Value::Int64(5));
  open.IntersectCmp(BinaryOp::kLt, Value::Int64(50));
  EXPECT_FALSE(open.Contains(inner));
}

}  // namespace
}  // namespace rfid
