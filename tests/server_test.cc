// SQL server front end: wire-protocol round-trips, remote execution
// bit-identical to embedded, session-local rule catalogs, the
// prepared-statement plan cache (hit / miss / invalidation), structured
// admission-control rejections, protocol-level error fidelity, and
// graceful shutdown.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <thread>

#include "plan/planner.h"
#include "rewrite/rewriter.h"
#include "rfidgen/anomaly.h"
#include "rfidgen/workload.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/parser.h"

namespace rfid {
namespace {

using server::CacheOutcome;
using server::Client;
using server::RowsPayload;
using server::Server;
using server::ServerOptions;

// Bit-exact canonical form: doubles render as their IEEE bit pattern, so
// two result sets compare equal only when every value is bit-identical.
std::string BitExact(const Value& v) {
  if (v.type() == DataType::kDouble) {
    uint64_t bits = 0;
    double d = v.double_value();
    std::memcpy(&bits, &d, sizeof(bits));
    return "d:" + std::to_string(bits);
  }
  return std::string(DataTypeName(v.type())) + ":" + v.ToString();
}

std::vector<std::string> Canonical(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  for (const Row& r : rows) {
    std::string s;
    for (const Value& v : r) s += BitExact(v) + "|";
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --- protocol unit tests (no sockets) ---

TEST(ProtocolTest, RowsPayloadRoundTripsBitExact) {
  RowsPayload in;
  in.fields = {{"t", "epc", DataType::kString}, {"", "avg", DataType::kDouble}};
  in.rows.push_back({Value::String("urn:epc:1"), Value::Double(0.1 + 0.2)});
  in.rows.push_back({Value::Null(), Value::Double(-0.0)});
  in.rows.push_back(
      {Value::Timestamp(123456789), Value::Double(std::nan(""))});
  in.rows.push_back({Value::Interval(-5), Value::Int64(-1)});
  in.rows.push_back({Value::Bool(true), Value::Bool(false)});
  in.elapsed_micros = 4242;
  in.cache = CacheOutcome::kInvalidated;
  in.rewrite_note = "[rewritten: expanded strategy, est. cost 12]";
  in.warnings = "lint: duplicate names";
  in.explain = "Scan(caseR)";

  std::string wire = server::EncodeRowsPayload(in);
  RowsPayload out;
  ASSERT_TRUE(server::DecodeRowsPayload(wire, &out).ok());
  ASSERT_EQ(out.fields.size(), 2u);
  EXPECT_EQ(out.fields[0].qualifier, "t");
  EXPECT_EQ(out.fields[0].name, "epc");
  EXPECT_EQ(out.fields[1].type, DataType::kDouble);
  EXPECT_EQ(Canonical(out.rows), Canonical(in.rows));
  EXPECT_EQ(out.elapsed_micros, 4242u);
  EXPECT_EQ(out.cache, CacheOutcome::kInvalidated);
  EXPECT_EQ(out.rewrite_note, in.rewrite_note);
  EXPECT_EQ(out.warnings, in.warnings);
  EXPECT_EQ(out.explain, in.explain);
}

TEST(ProtocolTest, ErrorPayloadPreservesCodeAndMessage) {
  Status in = Status::ParseError(
      "expected expression but got ';' (line 3, column 14)");
  Status out = server::DecodeErrorPayload(server::EncodeErrorPayload(in));
  EXPECT_EQ(out.code(), in.code());
  EXPECT_EQ(out.message(), in.message());
}

TEST(ProtocolTest, TruncatedPayloadFailsCleanly) {
  RowsPayload in;
  in.fields = {{"", "x", DataType::kInt64}};
  in.rows.push_back({Value::Int64(7)});
  std::string wire = server::EncodeRowsPayload(in);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    RowsPayload out;
    Status st = server::DecodeRowsPayload(wire.substr(0, cut), &out);
    EXPECT_FALSE(st.ok()) << "cut at " << cut;
  }
}

// --- live server fixture ---

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    auto srv = Server::Start(std::move(options));
    ASSERT_TRUE(srv.ok()) << srv.status().ToString();
    server_ = std::move(*srv);
  }

  std::unique_ptr<Client> MustConnect() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : nullptr;
  }

  // Mirrors the server's .gen command on an embedded database.
  static void GenEmbedded(Database* db, int64_t pallets, double dirty_pct) {
    rfidgen::GeneratorOptions gen;
    gen.num_pallets = pallets;
    auto g = rfidgen::Generate(gen, db);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    rfidgen::AnomalyOptions anomalies;
    anomalies.dirty_fraction = dirty_pct / 100.0;
    auto a = rfidgen::InjectAnomalies(anomalies, db);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
  }

  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, HandshakeGivesDistinctSessions) {
  StartServer();
  auto a = MustConnect();
  auto b = MustConnect();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->session_id(), b->session_id());
  EXPECT_EQ(server_->active_sessions(), 2);
  EXPECT_TRUE(a->Quit().ok());
  EXPECT_TRUE(b->Quit().ok());
}

TEST_F(ServerTest, SessionLimitRefusesWithResourceExhausted) {
  ServerOptions options;
  options.max_sessions = 1;
  StartServer(options);
  auto a = MustConnect();
  ASSERT_NE(a, nullptr);
  auto b = Client::Connect("127.0.0.1", server_->port());
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(b.status().message().find("session limit"), std::string::npos);
}

TEST_F(ServerTest, RemoteResultsBitIdenticalToEmbeddedAcrossStrategies) {
  StartServer();
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  auto gen = client->Command(".gen 6 15");
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();

  // The embedded twin: same generator, same anomalies, same rules.
  Database db;
  GenEmbedded(&db, 6, 15);
  CleansingRuleEngine engine(&db);
  for (const std::string& def : workload::StandardRuleDefinitions(2)) {
    ASSERT_TRUE(engine.DefineRule(def).ok());
    auto remote = client->Command(".rule " + def);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  }

  const int64_t t1 = workload::T1ForSelectivity(db, 0.6);
  const std::vector<std::string> queries = {
      workload::Q1(t1),
      "SELECT epc, biz_loc FROM caseR WHERE rtime <= TIMESTAMP " +
          std::to_string(t1),
      "SELECT count(*) FROM caseR",
  };
  const std::vector<std::pair<std::string, RewriteStrategy>> strategies = {
      {"naive", RewriteStrategy::kNaive},
      {"expanded", RewriteStrategy::kExpanded},
      {"joinback", RewriteStrategy::kJoinBack},
  };
  for (const auto& [name, strategy] : strategies) {
    ASSERT_TRUE(client->Set("strategy", name).ok());
    for (const std::string& sql : queries) {
      QueryRewriter rewriter(&db, &engine);
      RewriteOptions opts;
      opts.strategy = strategy;
      auto info = rewriter.Rewrite(sql, opts);
      if (!info.ok()) {
        // A strategy with no feasible rewrite (e.g. expanded for a pure
        // aggregate) must fail identically over the wire.
        auto remote = client->Query(sql);
        ASSERT_FALSE(remote.ok()) << "strategy " << name << ", query: " << sql;
        EXPECT_EQ(remote.status().code(), info.status().code());
        EXPECT_EQ(remote.status().message(), info.status().message());
        continue;
      }
      auto embedded = ExecuteSql(db, info->sql);
      ASSERT_TRUE(embedded.ok()) << embedded.status().ToString();

      auto remote = client->Query(sql);
      ASSERT_TRUE(remote.ok()) << remote.status().ToString();
      EXPECT_EQ(Canonical(remote->rows), Canonical(embedded->rows))
          << "strategy " << name << ", query: " << sql;
      ASSERT_EQ(remote->fields.size(), embedded->desc.num_fields());
      for (size_t i = 0; i < remote->fields.size(); ++i) {
        EXPECT_EQ(remote->fields[i].name, embedded->desc.field(i).name);
      }
    }
  }
}

TEST_F(ServerTest, PreparedStatementsHitThePlanCache) {
  StartServer();
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Command(".gen 4 10").ok());
  for (const std::string& def : workload::StandardRuleDefinitions(1)) {
    ASSERT_TRUE(client->Command(".rule " + def).ok());
  }
  auto stmt = client->Prepare("SELECT count(*) FROM caseR");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();

  auto first = client->Execute(*stmt);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->cache, CacheOutcome::kMiss);

  auto second = client->Execute(*stmt);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->cache, CacheOutcome::kHit);
  EXPECT_EQ(Canonical(first->rows), Canonical(second->rows));
  // The cached rewrite reuses the derivation's diagnostics verbatim.
  EXPECT_EQ(first->rewrite_note, second->rewrite_note);

  auto stats = server_->plan_cache_stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.misses, 1u);

  ASSERT_TRUE(client->CloseStatement(*stmt).ok());
  auto gone = client->Execute(*stmt);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
}

TEST_F(ServerTest, PrepareReportsSyntaxErrorsWithLocation) {
  StartServer();
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  const std::string bad = "SELECT epc FROM";
  auto stmt = client->Prepare(bad);
  ASSERT_FALSE(stmt.ok());
  auto embedded = ParseSql(bad);
  ASSERT_FALSE(embedded.ok());
  EXPECT_EQ(stmt.status().code(), embedded.status().code());
  EXPECT_EQ(stmt.status().message(), embedded.status().message());
  EXPECT_NE(stmt.status().message().find("line 1"), std::string::npos);
}

TEST_F(ServerTest, PlanCacheInvalidatesOnStatsVersionBump) {
  StartServer();
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Command(".feed 2 64").ok());
  for (const std::string& def : workload::StandardRuleDefinitions(1)) {
    ASSERT_TRUE(client->Command(".rule " + def).ok());
  }
  const std::string sql = "SELECT count(*) FROM caseR";
  auto first = client->Query(sql);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->cache, CacheOutcome::kMiss);
  auto second = client->Query(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->cache, CacheOutcome::kHit);

  // New batches publish new statistics: the cached rewrite was costed
  // against numbers that no longer exist, so the entry is invalidated
  // (distinct from a plain miss) and re-derived.
  ASSERT_TRUE(client->Command(".feed 2 64").ok());
  auto third = client->Query(sql);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->cache, CacheOutcome::kInvalidated);
  auto fourth = client->Query(sql);
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(fourth->cache, CacheOutcome::kHit);
  EXPECT_GE(server_->plan_cache_stats().invalidations, 1u);
}

TEST_F(ServerTest, PlanCacheMissesOnRuleSetChange) {
  StartServer();
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Command(".gen 4 10").ok());
  std::vector<std::string> defs = workload::StandardRuleDefinitions(2);
  ASSERT_TRUE(client->Command(".rule " + defs[0]).ok());
  const std::string sql = "SELECT count(*) FROM caseR";
  ASSERT_TRUE(client->Query(sql).ok());
  auto hit = client->Query(sql);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->cache, CacheOutcome::kHit);

  // A rule-set change moves the catalog fingerprint: the old entry can
  // no longer be reached, so the same SQL misses and re-derives.
  ASSERT_TRUE(client->Command(".rule " + defs[1]).ok());
  auto miss = client->Query(sql);
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->cache, CacheOutcome::kMiss);
}

TEST_F(ServerTest, SessionsHaveIsolatedRuleCatalogs) {
  StartServer();
  auto a = MustConnect();
  auto b = MustConnect();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(a->Command(".gen 4 10").ok());
  for (const std::string& def : workload::StandardRuleDefinitions(1)) {
    ASSERT_TRUE(a->Command(".rule " + def).ok());
  }
  auto a_rules = a->Command(".rules");
  ASSERT_TRUE(a_rules.ok());
  EXPECT_EQ(a_rules->find("(0 rules)"), std::string::npos);
  auto b_rules = b->Command(".rules");
  ASSERT_TRUE(b_rules.ok());
  EXPECT_NE(b_rules->find("(0 rules)"), std::string::npos);

  // A's queries are rewritten; B's run untouched (no rules → bypass).
  auto a_res = a->Query("SELECT count(*) FROM caseR");
  ASSERT_TRUE(a_res.ok());
  EXPECT_FALSE(a_res->rewrite_note.empty());
  auto b_res = b->Query("SELECT count(*) FROM caseR");
  ASSERT_TRUE(b_res.ok());
  EXPECT_TRUE(b_res->rewrite_note.empty());
  EXPECT_EQ(b_res->cache, CacheOutcome::kBypass);
  // The shared database never grows a __rules table for session rules.
  auto tables = a->Command(".tables");
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(tables->find("__rules"), std::string::npos);
}

TEST_F(ServerTest, ErrorFidelityMatchesEmbedded) {
  StartServer();
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Command(".gen 4 10").ok());
  Database db;
  GenEmbedded(&db, 4, 10);
  const std::vector<std::string> bad = {
      "SELECT FROM caseR",                 // syntax (line/column)
      "SELECT epc FROM nonexistent",       // binder: unknown table
      "SELECT nope FROM caseR",            // binder: unknown column
      "SELECT epc FROM caseR WHERE",       // syntax at end of input
  };
  for (const std::string& sql : bad) {
    auto embedded = ExecuteSql(db, sql);
    ASSERT_FALSE(embedded.ok()) << sql;
    auto remote = client->Query(sql);
    ASSERT_FALSE(remote.ok()) << sql;
    EXPECT_EQ(remote.status().code(), embedded.status().code()) << sql;
    EXPECT_EQ(remote.status().message(), embedded.status().message()) << sql;
  }
}

TEST_F(ServerTest, SetMaxRowsSurfacesRowLimit) {
  StartServer();
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Command(".gen 4 10").ok());
  ASSERT_TRUE(client->Set("max_rows", "5").ok());
  auto res = client->Query("SELECT epc FROM caseR");
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(res.status().message().find("row limit"), std::string::npos);
  ASSERT_TRUE(client->Set("max_rows", "0").ok());
  EXPECT_TRUE(client->Query("SELECT epc FROM caseR").ok());
}

TEST_F(ServerTest, SessionQuotaRejectsOverBudgetQueries) {
  ServerOptions options;
  options.admission.session_quota_bytes = 4 << 20;  // 4 MiB
  StartServer(options);
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Command(".gen 6 10").ok());
  // A full sort of caseR cannot fit a 4 MiB budget: the engine's own
  // accounting rejects it as ResourceExhausted — never an OOM.
  auto res = client->Query("SELECT * FROM caseR ORDER BY rtime");
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(res.status().message().find("memory budget"), std::string::npos);
  // The failure is per-query: the session keeps working under its quota.
  EXPECT_TRUE(client->Query("SELECT count(*) FROM caseR").ok());
}

TEST_F(ServerTest, AdmissionQueueFullAndTimeoutRejections) {
  ServerOptions options;
  options.admission.max_concurrent = 1;
  options.admission.queue_depth = 1;
  options.admission.queue_wait_micros = 300'000;  // 300 ms
  StartServer(options);
  auto holder = MustConnect();
  auto waiter = MustConnect();
  auto rejected = MustConnect();
  ASSERT_NE(holder, nullptr);
  ASSERT_NE(waiter, nullptr);
  ASSERT_NE(rejected, nullptr);
  ASSERT_TRUE(holder->Command(".gen 4 10").ok());

  // holder occupies the single slot for 900 ms; waiter queues and times
  // out after 300 ms; rejected finds the queue full while waiter waits.
  std::thread hold_thread([&] {
    auto res = holder->Command(".debug_hold 900");
    EXPECT_TRUE(res.ok()) << res.status().ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  Status timeout_status, full_status;
  std::thread wait_thread([&] {
    timeout_status = waiter->Query("SELECT count(*) FROM caseR").status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  full_status = rejected->Query("SELECT count(*) FROM caseR").status();
  wait_thread.join();
  hold_thread.join();

  EXPECT_EQ(full_status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(full_status.message().find("queue full"), std::string::npos)
      << full_status.ToString();
  EXPECT_EQ(timeout_status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(timeout_status.message().find("queue wait deadline"),
            std::string::npos)
      << timeout_status.ToString();
  auto stats = server_->admission_stats();
  EXPECT_GE(stats.rejected_queue_full, 1u);
  EXPECT_GE(stats.rejected_timeout, 1u);
  // After the hold releases, the slot is free again.
  EXPECT_TRUE(holder->Query("SELECT count(*) FROM caseR").ok());
}

TEST_F(ServerTest, GracefulShutdownDrainsAndRefuses) {
  ServerOptions options;
  options.admission.max_concurrent = 1;
  StartServer(options);
  auto busy = MustConnect();
  ASSERT_NE(busy, nullptr);
  ASSERT_TRUE(busy->Command(".gen 4 10").ok());

  // Occupy the server with an in-flight command, then shut down under
  // load: the drain must wait for it, refuse new connections with a
  // clean ERROR frame, and fail queued admissions with kCancelled.
  std::atomic<bool> hold_done{false};
  std::thread hold_thread([&] {
    auto res = busy->Command(".debug_hold 700");
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    hold_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::thread shutdown_thread([&] { server_->Shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // The drain is still waiting on the held slot: a new connection gets
  // the structured refusal rather than a hang or a reset.
  auto late = Client::Connect("127.0.0.1", server_->port());
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kCancelled);
  EXPECT_NE(late.status().message().find("shutting down"), std::string::npos);

  shutdown_thread.join();
  EXPECT_TRUE(hold_done.load());  // in-flight work completed, not dropped
  hold_thread.join();
  EXPECT_TRUE(server_->final_flush_status().ok());
}

TEST_F(ServerTest, ShutdownCancelsQueuedAdmissions) {
  ServerOptions options;
  options.admission.max_concurrent = 1;
  options.admission.queue_wait_micros = 5'000'000;
  StartServer(options);
  auto holder = MustConnect();
  auto queued = MustConnect();
  ASSERT_NE(holder, nullptr);
  ASSERT_NE(queued, nullptr);
  ASSERT_TRUE(holder->Command(".gen 4 10").ok());

  std::thread hold_thread([&] {
    (void)holder->Command(".debug_hold 800");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  Status queued_status;
  std::thread queued_thread([&] {
    queued_status = queued->Query("SELECT count(*) FROM caseR").status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  server_->Shutdown();
  queued_thread.join();
  hold_thread.join();
  EXPECT_EQ(queued_status.code(), StatusCode::kCancelled);
  EXPECT_NE(queued_status.message().find("shutting down"), std::string::npos)
      << queued_status.ToString();
}

TEST_F(ServerTest, ShutdownFlushesWalForRestartRecovery) {
  std::string dir = ::testing::TempDir() + "/server_wal_flush";
  std::filesystem::remove_all(dir);
  {
    StartServer();
    auto client = MustConnect();
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(client->Command(".wal " + dir).ok());
    ASSERT_TRUE(client->Command(".feed 3 64").ok());
    server_->Shutdown();
    ASSERT_TRUE(server_->final_flush_status().ok())
        << server_->final_flush_status().ToString();
    server_.reset();
  }
  // A fresh server recovers everything the first one ingested.
  StartServer();
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  auto rec = client->Command(".recover " + dir);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  auto rows = client->Query("SELECT count(*) FROM caseR");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_GT(rows->rows[0][0].int64_value(), 0);
}

}  // namespace
}  // namespace rfid
