// Parallel queries under live ingest: query threads run q1 through all
// three rewrite strategies with intra-query parallelism forced ON while
// an IngestDriver publishes epochs the whole time — so pool workers scan
// segments, build join partitions, and evaluate window partitions
// concurrently with the writer appending past the pinned watermark. Every
// iteration checks snapshot exactness (raw count == watermark), strategy
// agreement on the same snapshot, and that the parallel answer equals a
// serial run on the same pinned snapshot. This test is a target of the
// RFID_SANITIZE=thread pass in scripts/check.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/parallel.h"
#include "ingest/ingest.h"
#include "plan/planner.h"
#include "rewrite/rewriter.h"
#include "rfidgen/stream.h"
#include "rfidgen/workload.h"
#include "storage/snapshot.h"

namespace rfid {
namespace {

using ingest::IngestDriver;
using ingest::IngestPipeline;
using ingest::TableBatch;
using rfidgen::ReadStream;
using rfidgen::StreamBatch;
using rfidgen::StreamOptions;

constexpr int kQueryThreads = 2;
constexpr size_t kBatchRows = 30;
constexpr uint64_t kWarmupEpochs = 10;

std::vector<TableBatch> ToGroup(StreamBatch b) {
  std::vector<TableBatch> group;
  group.push_back({"caseR", std::move(b.case_rows)});
  group.push_back({"palletR", std::move(b.pallet_rows)});
  group.push_back({"parent", std::move(b.parent_rows)});
  group.push_back({"epc_info", std::move(b.info_rows)});
  return group;
}

// Order-sensitive serialization: within one pinned snapshot, a parallel
// plan must reproduce the serial plan's rows exactly.
std::vector<std::string> Exact(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& r : rows) {
    std::string s;
    for (const Value& v : r) s += v.ToString() + "|";
    out.push_back(std::move(s));
  }
  return out;
}

struct ThreadReport {
  uint64_t iterations = 0;
  uint64_t violations = 0;
  std::string first_violation;
};

TEST(ParallelConcurrencyTest, ParallelQueriesAgreeUnderLiveLoad) {
  // Parallelism forced on with a tiny threshold so even early epochs fan
  // out to pool workers. Restored at the end of the test.
  SetParallelPolicyForTest(4, 32);

  Database db;
  StreamOptions opt;
  opt.seed = 13;
  opt.num_pallets = 32;
  auto stream = ReadStream::Create(&db, opt);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();

  IngestPipeline pipeline(&db);
  for (uint64_t i = 0; i < kWarmupEpochs; ++i) {
    ASSERT_FALSE((*stream)->exhausted());
    Status st = pipeline.Apply(ToGroup((*stream)->NextBatch(kBatchRows)));
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  const std::string q1 = workload::Q1(workload::T1ForSelectivity(db, 0.8));
  const Table* case_r = db.GetTable("caseR");
  ASSERT_NE(case_r, nullptr);

  // Rule templates persist into shared catalog tables; build each
  // thread's engine and rewriter before any concurrency starts.
  std::vector<std::unique_ptr<CleansingRuleEngine>> engines;
  std::vector<std::unique_ptr<QueryRewriter>> rewriters;
  for (int t = 0; t < kQueryThreads; ++t) {
    engines.push_back(std::make_unique<CleansingRuleEngine>(&db));
    for (const std::string& def : workload::StandardRuleDefinitions(3)) {
      Status st = engines.back()->DefineRule(def);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    rewriters.push_back(
        std::make_unique<QueryRewriter>(&db, engines.back().get()));
  }

  IngestDriver::Options dopt;
  dopt.pause_micros = 1000;
  IngestDriver driver(
      &pipeline,
      [&stream]() {
        if ((*stream)->exhausted()) return std::vector<TableBatch>{};
        return ToGroup((*stream)->NextBatch(kBatchRows));
      },
      dopt);

  std::atomic<bool> load_done{false};
  std::vector<ThreadReport> reports(kQueryThreads);
  std::vector<std::thread> threads;

  driver.Start();
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&, t]() {
      QueryRewriter& rewriter = *rewriters[t];
      ThreadReport& rep = reports[t];
      auto fail = [&rep](const std::string& msg) {
        rep.violations++;
        if (rep.first_violation.empty()) rep.first_violation = msg;
      };

      bool final_pass = false;
      while (true) {
        if (load_done.load(std::memory_order_acquire)) final_pass = true;
        SnapshotPtr snap = pipeline.snapshot();
        ExecContext ctx;
        ctx.set_snapshot(snap);
        const TableSnapshot* ts = snap->ForTable(case_r);
        if (ts == nullptr) {
          fail("snapshot missing caseR");
          return;
        }

        // Raw count under the pinned snapshot equals the watermark even
        // while parallel scan workers race the ingest writer.
        auto count = ExecuteSql(db, "SELECT count(*) FROM caseR", &ctx);
        if (!count.ok()) {
          fail("count failed: " + count.status().ToString());
          return;
        }
        uint64_t seen =
            static_cast<uint64_t>(count->rows[0][0].int64_value());
        if (seen != ts->watermark) {
          fail("count " + std::to_string(seen) + " != watermark " +
               std::to_string(ts->watermark));
        }

        // All three strategies agree on this snapshot under parallel
        // execution, and the naive answer matches a fully serial run of
        // the same SQL against the same snapshot (bit-identical).
        std::vector<std::string> truth;
        for (RewriteStrategy strategy :
             {RewriteStrategy::kNaive, RewriteStrategy::kExpanded,
              RewriteStrategy::kJoinBack}) {
          RewriteOptions ropt;
          ropt.strategy = strategy;
          ropt.exec_context = &ctx;
          auto info = rewriter.Rewrite(q1, ropt);
          if (!info.ok()) {
            fail("rewrite failed: " + info.status().ToString());
            return;
          }
          auto res = ExecuteSql(db, info->sql, &ctx);
          if (!res.ok()) {
            fail("query failed: " + res.status().ToString());
            return;
          }
          std::vector<std::string> got = Exact(res->rows);
          std::sort(got.begin(), got.end());
          if (strategy == RewriteStrategy::kNaive) {
            truth = std::move(got);
            std::vector<std::string> parallel_exact = Exact(res->rows);
            // Determinism under contention: running the same parallel
            // plan twice on the same pinned snapshot must produce
            // identical rows in identical order, regardless of how the
            // pool's workers were scheduled either time.
            auto again = ExecuteSql(db, info->sql, &ctx);
            if (!again.ok()) {
              fail("re-run failed: " + again.status().ToString());
              return;
            }
            if (Exact(again->rows) != parallel_exact) {
              fail("parallel output not deterministic at watermark " +
                   std::to_string(ts->watermark));
            }
          } else if (got != truth) {
            fail("strategy disagreement at watermark " +
                 std::to_string(ts->watermark));
          }
        }
        rep.iterations++;
        if (final_pass) return;
      }
    });
  }

  Status load = driver.Join();
  load_done.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();

  EXPECT_TRUE(load.ok()) << load.ToString();
  EXPECT_EQ(pipeline.stats().batches_failed, 0u);

  for (int t = 0; t < kQueryThreads; ++t) {
    EXPECT_EQ(reports[t].violations, 0u)
        << "thread " << t << ": " << reports[t].first_violation;
    EXPECT_GE(reports[t].iterations, 1u) << "thread " << t << " never ran";
  }

  // After the load completes, a fresh snapshot sees every row — and a
  // parallel count agrees with the table's own accounting.
  ExecContext ctx;
  ctx.set_snapshot(pipeline.snapshot());
  auto final_count = ExecuteSql(db, "SELECT count(*) FROM caseR", &ctx);
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(static_cast<uint64_t>(final_count->rows[0][0].int64_value()),
            case_r->visible_rows());

  SetParallelPolicyForTest(0, 0);
}

}  // namespace
}  // namespace rfid
