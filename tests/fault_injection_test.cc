// Deterministic fault-injection sweeps over representative plans.
//
// For each plan the test first runs with a CountOnly injector to learn
// the number of injection points crossed (the sweep space) and the
// baseline result, then replays the pipeline with FailAtStep(k) for every
// step k. Each injected failure must surface as a non-OK Status with the
// injection site in the message — never a crash — and must unwind
// cleanly: all accounted memory released, no partial result escaping.
// scripts/check.sh also runs this binary under ASan+UBSan, which turns
// any leaked allocation on an unwind path into a hard failure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <optional>

#include "common/fault.h"
#include "common/io.h"
#include "common/string_util.h"
#include "common/time_util.h"
#include "expr/row_batch.h"
#include "plan/planner.h"
#include "rewrite/rewriter.h"
#include "verify/verify.h"

namespace rfid {
namespace {

std::vector<std::string> Canonical(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  for (const Row& r : rows) {
    std::string s;
    for (const Value& v : r) s += v.ToString() + "|";
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct PipelineOutcome {
  Status status = Status::OK();
  std::vector<Row> rows;
};

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema reads;
    reads.AddColumn("epc", DataType::kString);
    reads.AddColumn("rtime", DataType::kTimestamp);
    reads.AddColumn("reader", DataType::kString);
    reads.AddColumn("biz_loc", DataType::kString);
    case_r_ = db_.CreateTable("caseR", reads).value();

    Schema locs;
    locs.AddColumn("gln", DataType::kString);
    locs.AddColumn("site", DataType::kString);
    locs_ = db_.CreateTable("locs", locs).value();

    ASSERT_TRUE(
        locs_->Append({Value::String("locA"), Value::String("dc1")}).ok());
    ASSERT_TRUE(
        locs_->Append({Value::String("locB"), Value::String("store1")}).ok());
    ASSERT_TRUE(
        locs_->Append({Value::String("locC"), Value::String("store1")}).ok());

    const char* readers[] = {"r1", "r2", "readerX"};
    const char* glns[] = {"locA", "locB", "locC"};
    for (int e = 0; e < 6; ++e) {
      for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(case_r_
                        ->Append({Value::String("e" + std::to_string(e)),
                                  Value::Timestamp(Minutes(3 * i + e)),
                                  Value::String(readers[(e + i) % 3]),
                                  Value::String(glns[(e + 2 * i) % 3])})
                        .ok());
      }
    }
    ASSERT_TRUE(case_r_->BuildIndex("rtime").ok());
    ASSERT_TRUE(case_r_->BuildIndex("epc").ok());
    case_r_->ComputeStats();
    locs_->ComputeStats();

    engine_ = std::make_unique<CleansingRuleEngine>(&db_);
    ASSERT_TRUE(engine_
                    ->DefineRule("DEFINE reader ON caseR CLUSTER BY epc "
                                 "SEQUENCE BY rtime AS (A, *B) WHERE "
                                 "B.reader = 'readerX' AND B.rtime - A.rtime "
                                 "< 5 MINUTES ACTION DELETE A")
                    .ok());
    rewriter_ = std::make_unique<QueryRewriter>(&db_, engine_.get());
  }

  void TearDown() override {
    SetVectorizedForTest(-1);
    SetBatchCapacityForTest(0);
    SetVerifyForTest(-1);
  }

  // Runs one full pipeline (optional rewrite, then execute) under
  // whatever fault injector the caller installed. Verifies that failure
  // or success, the context ends with zero accounted bytes.
  PipelineOutcome RunPipeline(const std::string& sql,
                              std::optional<RewriteStrategy> strategy) {
    PipelineOutcome out;
    ExecContext ctx;
    std::string exec_sql = sql;
    if (strategy.has_value()) {
      RewriteOptions opts;
      opts.strategy = *strategy;
      opts.exec_context = &ctx;
      auto info = rewriter_->Rewrite(sql, opts);
      if (!info.ok()) {
        out.status = info.status();
        EXPECT_EQ(ctx.memory_used(), 0u);
        return out;
      }
      exec_sql = info.value().sql;
    }
    auto res = ExecuteSql(db_, exec_sql, &ctx);
    if (!res.ok()) {
      out.status = res.status();
    } else {
      out.rows = std::move(res.value().rows);
    }
    EXPECT_EQ(ctx.memory_used(), 0u) << "accounted memory leaked: " << sql;
    return out;
  }

  // CountOnly baseline, then the exhaustive (strided when huge) fail-at-k
  // sweep, then a clean re-run that must reproduce the baseline.
  void Sweep(const std::string& label, const std::string& sql,
             std::optional<RewriteStrategy> strategy) {
    SCOPED_TRACE(label);
    FaultInjector counter = FaultInjector::CountOnly();
    uint64_t total_steps = 0;
    std::vector<std::string> baseline;
    {
      ScopedFaultInjector scope(&counter);
      PipelineOutcome out = RunPipeline(sql, strategy);
      ASSERT_TRUE(out.status.ok()) << out.status.ToString();
      ASSERT_FALSE(out.rows.empty());
      baseline = Canonical(out.rows);
      total_steps = counter.steps();
    }
    ASSERT_GT(total_steps, 0u);

    // Cap the sweep at ~500 injected runs; the stride still covers every
    // operator's Open, the early Next calls, and the tail.
    const uint64_t stride = std::max<uint64_t>(1, total_steps / 500);
    for (uint64_t k = 0; k < total_steps; k += stride) {
      FaultInjector injector = FaultInjector::FailAtStep(k);
      ScopedFaultInjector scope(&injector);
      PipelineOutcome out = RunPipeline(sql, strategy);
      ASSERT_TRUE(injector.fired()) << "step " << k;
      EXPECT_EQ(injector.fired_step(), k);
      ASSERT_FALSE(out.status.ok())
          << "injected fault at step " << k << " (site "
          << injector.fired_site() << ") was swallowed";
      EXPECT_NE(out.status.message().find("injected fault"),
                std::string::npos)
          << out.status.ToString();
      EXPECT_TRUE(out.rows.empty()) << "partial rows escaped at step " << k;
    }

    // The engine recovers completely once faults stop.
    PipelineOutcome clean = RunPipeline(sql, strategy);
    ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
    EXPECT_EQ(Canonical(clean.rows), baseline);
  }

  Database db_;
  Table* case_r_ = nullptr;
  Table* locs_ = nullptr;
  std::unique_ptr<CleansingRuleEngine> engine_;
  std::unique_ptr<QueryRewriter> rewriter_;
};

TEST_F(FaultInjectionTest, ScanOnlySweep) {
  Sweep("scan-only", "SELECT epc, rtime, reader, biz_loc FROM caseR",
        std::nullopt);
}

TEST_F(FaultInjectionTest, NaiveWindowCleansingSweep) {
  Sweep("naive", "SELECT epc, rtime FROM caseR WHERE biz_loc = 'locA'",
        RewriteStrategy::kNaive);
}

TEST_F(FaultInjectionTest, ExpandedRewriteSweep) {
  Sweep("expanded", "SELECT epc, rtime FROM caseR WHERE biz_loc = 'locA'",
        RewriteStrategy::kExpanded);
}

TEST_F(FaultInjectionTest, JoinBackRewriteSweep) {
  Sweep("join-back", "SELECT epc, rtime FROM caseR WHERE biz_loc = 'locA'",
        RewriteStrategy::kJoinBack);
}

TEST_F(FaultInjectionTest, JoinAggregateSweep) {
  Sweep("join+aggregate",
        "SELECT l.site, count(*) FROM caseR c, locs l "
        "WHERE c.biz_loc = l.gln AND l.site = 'store1' GROUP BY l.site",
        RewriteStrategy::kAuto);
}

// The default sweeps above run whatever engine the build defaults to
// (vectorized when RFID_VECTORIZED=ON). Pin the row interpreter so its
// per-row unwind paths stay swept even with batching on by default.
TEST_F(FaultInjectionTest, RowEngineSweepStillCovered) {
  SetVectorizedForTest(0);
  Sweep("row-naive", "SELECT epc, rtime FROM caseR WHERE biz_loc = 'locA'",
        RewriteStrategy::kNaive);
}

// Batch pipelines at a tiny capacity: several NextBatch calls per
// operator, so the sweep crosses mid-stream batch refills in every
// operator of the window/join plans.
TEST_F(FaultInjectionTest, VectorizedSmallBatchSweep) {
  SetVectorizedForTest(1);
  SetBatchCapacityForTest(5);
  Sweep("vectorized-expanded",
        "SELECT epc, rtime FROM caseR WHERE biz_loc = 'locA'",
        RewriteStrategy::kExpanded);
}

// Faults injected at `<Op>.NextBatch` sites specifically must surface
// and unwind through the same idempotent Close/RAII guards as row-path
// faults — and those sites must actually exist in a vectorized plan.
TEST_F(FaultInjectionTest, NextBatchFaultSitesUnwindCleanly) {
#ifdef RFID_VECTORIZED_OFF
  GTEST_SKIP() << "built with RFID_VECTORIZED=OFF; no NextBatch sites";
#endif
  SetVectorizedForTest(1);
  SetBatchCapacityForTest(4);
  const std::string sql = "SELECT epc, rtime FROM caseR WHERE biz_loc = 'locA'";

  FaultInjector counter = FaultInjector::CountOnly();
  uint64_t total_steps = 0;
  {
    ScopedFaultInjector scope(&counter);
    PipelineOutcome out = RunPipeline(sql, RewriteStrategy::kNaive);
    ASSERT_TRUE(out.status.ok()) << out.status.ToString();
    total_steps = counter.steps();
  }

  size_t next_batch_faults = 0;
  for (uint64_t k = 0; k < total_steps; ++k) {
    FaultInjector injector = FaultInjector::FailAtStep(k);
    ScopedFaultInjector scope(&injector);
    PipelineOutcome out = RunPipeline(sql, RewriteStrategy::kNaive);
    ASSERT_TRUE(injector.fired()) << "step " << k;
    ASSERT_FALSE(out.status.ok()) << "fault at step " << k << " swallowed";
    EXPECT_TRUE(out.rows.empty()) << "partial rows escaped at step " << k;
    if (injector.fired_site().find(".NextBatch") != std::string::npos) {
      ++next_batch_faults;
    }
  }
  EXPECT_GT(next_batch_faults, 0u)
      << "no NextBatch fault sites crossed: the plan did not run batched";
}

// The static verification layer adds its own injection site
// (verify.Plan fires once per planner phase) and walks whatever plan
// the fault-shortened pipeline handed it. With verification pinned on,
// every injected failure must still unwind as a structured Status —
// the verifiers never crash on a partially-constructed plan, and their
// own fault points surface like any other.
TEST_F(FaultInjectionTest, VerifiedPipelineSweep) {
  SetVerifyForTest(1);
  Sweep("verified-expanded",
        "SELECT epc, rtime FROM caseR WHERE biz_loc = 'locA'",
        RewriteStrategy::kExpanded);
}

// Reproducible chaos: random-fire injectors across many seeds. The
// pipeline must fail exactly when the injector fired, and never crash.
TEST_F(FaultInjectionTest, SeededRandomChaos) {
  const std::string sql = "SELECT epc, rtime FROM caseR WHERE biz_loc = 'locA'";
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    FaultInjector injector = FaultInjector::SeededRandom(seed, 0.02);
    ScopedFaultInjector scope(&injector);
    PipelineOutcome out = RunPipeline(sql, RewriteStrategy::kAuto);
    EXPECT_EQ(out.status.ok(), !injector.fired())
        << "seed " << seed << ": " << out.status.ToString();
  }
}

// A fired injector keeps failing: retries inside the same scope cannot
// silently succeed against a dead subsystem.
TEST_F(FaultInjectionTest, FiredInjectorStaysFailing) {
  FaultInjector injector = FaultInjector::FailAtStep(0);
  ScopedFaultInjector scope(&injector);
  EXPECT_FALSE(PokeFault("first").ok());
  EXPECT_FALSE(PokeFault("second").ok());
  EXPECT_EQ(injector.fired_site(), "first");
  EXPECT_EQ(injector.fired_step(), 0u);
  EXPECT_EQ(injector.steps(), 2u);
}

TEST_F(FaultInjectionTest, NoInjectorMeansNoOverheadPath) {
  EXPECT_FALSE(FaultInjectionActive());
  EXPECT_TRUE(PokeFault("anything").ok());
}

// File-I/O fault sites (common/io.h): a fail-at-step sweep over one
// append+sync sequence must fire each site deterministically and leave
// the documented on-disk artifact — nothing written, a torn half, a
// bit-flipped copy, or unsynced-but-present bytes.
TEST(FileIoFaultTest, SitesFireDeterministicallyWithRealisticArtifacts) {
  const std::string path = ::testing::TempDir() + "/rfid_io_fault.bin";
  const std::string payload = "0123456789abcdef";  // 16 bytes, even split

  auto run_step = [&](FaultInjector* injector) {
    std::remove(path.c_str());
    auto file = DurableFile::Create(path);
    if (!file.ok()) return file.status();
    ScopedFaultInjector scope(injector);
    Status st = file->Append(payload);
    if (st.ok()) st = file->Sync();
    return st;
  };

  // Learn the sweep space (Create runs outside the scope: the sites
  // under test are the append/sync ones).
  uint64_t total = 0;
  {
    FaultInjector counter = FaultInjector::CountOnly();
    ASSERT_TRUE(run_step(&counter).ok());
    total = counter.steps();
  }
  ASSERT_EQ(total, 4u) << "io.write, io.write.short, io.write.flip, io.fsync";

  for (uint64_t step = 0; step < total; ++step) {
    FaultInjector injector = FaultInjector::FailAtStep(step);
    Status st = run_step(&injector);
    ASSERT_FALSE(st.ok()) << "step " << step;
    ASSERT_TRUE(injector.fired()) << "step " << step;
    auto on_disk = ReadFileToString(path);
    ASSERT_TRUE(on_disk.ok());
    if (injector.fired_site() == kFaultIoWrite) {
      EXPECT_TRUE(on_disk->empty()) << "crash-before-write left bytes";
    } else if (injector.fired_site() == kFaultIoWriteShort) {
      EXPECT_EQ(*on_disk, payload.substr(0, payload.size() / 2))
          << "short write should leave exactly the first half";
    } else if (injector.fired_site() == kFaultIoWriteFlip) {
      EXPECT_EQ(on_disk->size(), payload.size());
      EXPECT_NE(*on_disk, payload) << "flip site wrote clean bytes";
      EXPECT_NE(Crc32(*on_disk), Crc32(payload))
          << "a checksum must be able to catch the flip";
    } else if (injector.fired_site() == kFaultIoFsync) {
      EXPECT_EQ(*on_disk, payload) << "fsync failure loses no written bytes";
    } else {
      ADD_FAILURE() << "unexpected site " << injector.fired_site()
                    << " at step " << step;
    }
    // Identical reruns fire the identical site: the sweep space is
    // stable, which is what makes crash-point sweeps reproducible.
    FaultInjector again = FaultInjector::FailAtStep(step);
    ASSERT_FALSE(run_step(&again).ok());
    EXPECT_EQ(again.fired_site(), injector.fired_site()) << "step " << step;
    EXPECT_EQ(again.fired_step(), injector.fired_step()) << "step " << step;
  }
  std::remove(path.c_str());
}

// The atomic-replace path: a rename failure must leave the previous
// final file untouched (the crash artifact is "old contents survive").
TEST(FileIoFaultTest, RenameFailureLeavesPreviousFileIntact) {
  const std::string path = ::testing::TempDir() + "/rfid_io_atomic.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "previous contents").ok());

  // Count the steps one atomic write crosses, then fail each in turn.
  uint64_t total = 0;
  {
    FaultInjector counter = FaultInjector::CountOnly();
    ScopedFaultInjector scope(&counter);
    ASSERT_TRUE(WriteFileAtomic(path, "previous contents").ok());
    total = counter.steps();
  }
  ASSERT_GE(total, 5u);  // 3 write sites + fsync + rename

  for (uint64_t step = 0; step < total; ++step) {
    ASSERT_TRUE(WriteFileAtomic(path, "previous contents").ok());
    FaultInjector injector = FaultInjector::FailAtStep(step);
    Status st;
    {
      ScopedFaultInjector scope(&injector);
      st = WriteFileAtomic(path, "NEW contents that must not land");
    }
    ASSERT_FALSE(st.ok()) << "step " << step;
    auto on_disk = ReadFileToString(path);
    ASSERT_TRUE(on_disk.ok()) << "step " << step << " clobbered the file";
    EXPECT_EQ(*on_disk, "previous contents")
        << "step " << step << " (site " << injector.fired_site()
        << ") leaked a partial replacement";
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rfid
