// Unit tests for the common module: Status/Result, Value semantics,
// time formatting, string helpers, PRNG determinism.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/time_util.h"
#include "common/value.h"

namespace rfid {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad rule");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(StatusTest, ToStringCoversEveryCode) {
  const std::pair<Status, const char*> cases[] = {
      {Status::InvalidArgument("m"), "InvalidArgument: m"},
      {Status::NotFound("m"), "NotFound: m"},
      {Status::AlreadyExists("m"), "AlreadyExists: m"},
      {Status::Unimplemented("m"), "Unimplemented: m"},
      {Status::Internal("m"), "Internal: m"},
      {Status::ParseError("m"), "ParseError: m"},
      {Status::BindError("m"), "BindError: m"},
      {Status::RewriteInfeasible("m"), "RewriteInfeasible: m"},
      {Status::ResourceExhausted("m"), "ResourceExhausted: m"},
      {Status::Cancelled("m"), "Cancelled: m"},
      {Status::DeadlineExceeded("m"), "DeadlineExceeded: m"},
  };
  for (const auto& [status, expected] : cases) {
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.ToString(), expected);
  }
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusTest, GuardrailCodesAreDistinct) {
  EXPECT_NE(StatusCode::kResourceExhausted, StatusCode::kCancelled);
  EXPECT_NE(StatusCode::kCancelled, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
}

Result<int> Halve(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  RFID_ASSIGN_OR_RETURN(int half, Halve(x));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseMacros(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(UseMacros(7, &out).ok());
}

Result<std::unique_ptr<int>> MakeBox(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return std::make_unique<int>(x);
}

Status UnwrapBox(int x, int* out) {
  RFID_ASSIGN_OR_RETURN(std::unique_ptr<int> box, MakeBox(x));
  *out = *box;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMovesMoveOnlyTypes) {
  int out = 0;
  EXPECT_TRUE(UnwrapBox(11, &out).ok());
  EXPECT_EQ(out, 11);
  Status err = UnwrapBox(-1, &out);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, RvalueValueMovesOutMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = MakeBox(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> box = std::move(r).value();
  ASSERT_NE(box, nullptr);
  EXPECT_EQ(*box, 9);
}

TEST(ValueTest, NullBehaviour) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, CompareInt64) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Int64(2)), 0);
  EXPECT_EQ(Value::Int64(5).Compare(Value::Int64(5)), 0);
  EXPECT_GT(Value::Int64(9).Compare(Value::Int64(2)), 0);
}

TEST(ValueTest, CompareMixedNumeric) {
  EXPECT_EQ(Value::Int64(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int64(3).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Double(4.5).Compare(Value::Int64(4)), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, DistinctEqualsTreatsNullsEqual) {
  EXPECT_TRUE(Value::Null().DistinctEquals(Value::Null()));
  EXPECT_FALSE(Value::Null().DistinctEquals(Value::Int64(0)));
  EXPECT_TRUE(Value::Int64(7).DistinctEquals(Value::Int64(7)));
}

TEST(ValueTest, HashConsistentForEqualValues) {
  EXPECT_EQ(Value::Int64(3).Hash(), Value::Int64(3).Hash());
  EXPECT_EQ(Value::Int64(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
}

TEST(ValueTest, SqlLiteralQuoting) {
  EXPECT_EQ(Value::String("o'neil").ToSqlLiteral(), "'o''neil'");
  EXPECT_EQ(Value::Int64(12).ToSqlLiteral(), "12");
  EXPECT_EQ(Value::Bool(true).ToSqlLiteral(), "TRUE");
}

TEST(ValueTest, TimestampAndIntervalRoundTrip) {
  Value ts = Value::Timestamp(Minutes(5));
  EXPECT_EQ(ts.timestamp_value(), 5 * 60 * 1000000LL);
  Value iv = Value::Interval(Hours(2));
  EXPECT_EQ(iv.interval_value(), 2 * 3600 * 1000000LL);
}

TEST(TypesComparableTest, Rules) {
  EXPECT_TRUE(TypesComparable(DataType::kInt64, DataType::kDouble));
  EXPECT_TRUE(TypesComparable(DataType::kTimestamp, DataType::kTimestamp));
  EXPECT_FALSE(TypesComparable(DataType::kTimestamp, DataType::kInt64));
  EXPECT_FALSE(TypesComparable(DataType::kString, DataType::kInt64));
}

TEST(TimeUtilTest, FormatTimestampEpoch) {
  EXPECT_EQ(FormatTimestamp(0), "1970-01-01 00:00:00");
}

TEST(TimeUtilTest, FormatTimestampWithFraction) {
  EXPECT_EQ(FormatTimestamp(1500000), "1970-01-01 00:00:01.500000");
}

TEST(TimeUtilTest, FormatInterval) {
  EXPECT_EQ(FormatInterval(Minutes(5)), "5m");
  EXPECT_EQ(FormatInterval(Hours(1) + Minutes(30)), "1h30m");
  EXPECT_EQ(FormatInterval(0), "0s");
  EXPECT_EQ(FormatInterval(-Minutes(2)), "-2m");
}

TEST(TimeUtilTest, FormatIntervalSql) {
  EXPECT_EQ(FormatIntervalSql(Minutes(5)), "5 MINUTES");
  EXPECT_EQ(FormatIntervalSql(Hours(3)), "3 HOURS");
  EXPECT_EQ(FormatIntervalSql(Seconds(90)), "90 SECONDS");
  EXPECT_EQ(FormatIntervalSql(1), "1 MICROSECONDS");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StringUtilTest, JoinAndFormat) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(RandomTest, Deterministic) {
  Random a(42);
  Random b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, UniformRangeInclusive) {
  Random r(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = r.UniformRange(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    saw_lo |= (v == 1);
    saw_hi |= (v == 4);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random r(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (r.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

}  // namespace
}  // namespace rfid
