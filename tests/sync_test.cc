// Tests for the annotated concurrency layer (common/sync.h) and the
// lock-rank checker (common/lock_order.h).
//
// This binary is deliberately standalone: it compiles sync.h with
// RFID_SYNC_CHECK forced on (see tests/CMakeLists.txt) and links only
// GTest — not librfid — so the checker is active here regardless of the
// build type, without violating the one-definition rule against a
// library built with the checker compiled out.
#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <vector>

#include "common/lock_order.h"

namespace rfid {
namespace {

// The RAII guards stay pointer-sized in every mode, and CondVar never
// grows beyond the raw condition variable. The matching Release-mode
// claims for Mutex/SharedMutex (layout-identical to std::mutex /
// std::shared_mutex when the checker is off) are static_asserts inside
// sync.h itself, enforced by every RelWithDebInfo/Release build of the
// main library.
static_assert(sizeof(MutexLock) == sizeof(void*));
static_assert(sizeof(ReaderLock) == sizeof(void*));
static_assert(sizeof(WriterLock) == sizeof(void*));
static_assert(sizeof(CondVar) == sizeof(std::condition_variable));

// This binary forces the checker on; the death tests below depend on it.
static_assert(RFID_SYNC_CHECK_ENABLED == 1,
              "sync_test must build with RFID_SYNC_CHECK defined");

TEST(LockOrderTest, RankNamesCoverEveryRank) {
  EXPECT_STREQ(LockRankName(LockRank::kServerState), "server-state");
  EXPECT_STREQ(LockRankName(LockRank::kIngestPipeline), "ingest-pipeline");
  EXPECT_STREQ(LockRankName(LockRank::kLeaf), "leaf");
}

TEST(SyncTest, InOrderAcquisitionIsClean) {
  Mutex outer(LockRank::kIngestPipeline);
  Mutex inner(LockRank::kFragmentCache);
  MutexLock a(&outer);
  MutexLock b(&inner);  // rank 90 -> 100: strictly increasing, fine
}

TEST(SyncTest, ReacquireAfterReleaseIsClean) {
  Mutex mu(LockRank::kPlanCache);
  for (int i = 0; i < 100; ++i) {
    MutexLock lock(&mu);
  }
}

TEST(SyncTest, EarlyUnlockReleasesTheRankRecord) {
  Mutex high(LockRank::kWorkerPool);
  Mutex low(LockRank::kPlanCache);
  MutexLock a(&high);
  a.Unlock();
  // With the record for `high` gone, taking a lower rank is legal.
  MutexLock b(&low);
}

TEST(SyncTest, TryLockTracksRank) {
  Mutex mu(LockRank::kAdmission);
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
  MutexLock lock(&mu);  // record cleanly released above
}

TEST(SyncTest, SharedMutexReadersMayOverlap) {
  SharedMutex mu(LockRank::kServerState);
  ReaderLock a(&mu);
  std::thread other([&mu] { ReaderLock b(&mu); });
  other.join();
}

TEST(SyncTest, CondVarWaitRoundTrip) {
  Mutex mu(LockRank::kLeaf);
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(lock);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(SyncTest, CondVarWaitUntilTimesOut) {
  Mutex mu(LockRank::kLeaf);
  CondVar cv;
  MutexLock lock(&mu);
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_EQ(cv.WaitUntil(lock, deadline), std::cv_status::timeout);
}

// A deliberately inverted acquisition must abort with the rank
// diagnostic: plan-cache (80) while holding worker-pool (150) breaks the
// strict-increase rule.
TEST(SyncDeathTest, RankInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex held(LockRank::kWorkerPool);
        Mutex inverted(LockRank::kPlanCache);
        MutexLock a(&held);
        MutexLock b(&inverted);
      },
      "lock rank order violation");
}

// Equal rank counts as a violation too: it covers self-deadlock and
// same-band sibling locks, which the global order gives no edge between.
TEST(SyncDeathTest, EqualRankAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex first(LockRank::kFragmentCache);
        Mutex second(LockRank::kFragmentCache);
        MutexLock a(&first);
        MutexLock b(&second);
      },
      "lock rank order violation");
}

// The violation message names both ends of the bad edge, so the fix is
// obvious from the abort alone.
TEST(SyncDeathTest, ViolationNamesBothLocks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex held(LockRank::kColumnarDirectory);
        Mutex inverted(LockRank::kTableStats);
        MutexLock a(&held);
        MutexLock b(&inverted);
      },
      "\"table-stats\".*\"columnar-directory\"");
}

// Repeated contended acquisition across threads: the checker's
// thread_local bookkeeping must not introduce races (this test is part
// of the TSan pass in scripts/check.sh) and must not leak records.
TEST(SyncTest, RepeatedAcquisitionStressIsClean) {
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  Mutex outer(LockRank::kIngestPipeline);
  SharedMutex mid(LockRank::kIndexRuns);
  Mutex leaf(LockRank::kLeaf);
  CondVar cv;
  int counter = 0;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        if ((i + t) % 3 == 0) {
          MutexLock a(&outer);
          ReaderLock b(&mid);
          MutexLock c(&leaf);
          ++counter;
        } else if ((i + t) % 3 == 1) {
          WriterLock b(&mid);
          MutexLock c(&leaf);
          ++counter;
        } else {
          MutexLock c(&leaf);
          ++counter;
          cv.NotifyOne();
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  MutexLock check(&leaf);
  EXPECT_EQ(counter, kThreads * kIters);
}

// Producer/consumer over the wrappers end to end: the pattern every
// subsystem (worker pool, admission queue) uses, exercised under TSan.
TEST(SyncTest, ProducerConsumerQueue) {
  constexpr int kItems = 1000;
  Mutex mu(LockRank::kWorkerPool);
  CondVar cv;
  std::deque<int> queue;
  bool done = false;
  long long consumed_sum = 0;

  std::thread consumer([&] {
    while (true) {
      int item;
      {
        MutexLock lock(&mu);
        while (queue.empty() && !done) cv.Wait(lock);
        if (queue.empty()) return;
        item = queue.front();
        queue.pop_front();
      }
      consumed_sum += item;
    }
  });
  for (int i = 1; i <= kItems; ++i) {
    {
      MutexLock lock(&mu);
      queue.push_back(i);
    }
    cv.NotifyOne();
  }
  {
    MutexLock lock(&mu);
    done = true;
  }
  cv.NotifyAll();
  consumer.join();
  EXPECT_EQ(consumed_sum, 1LL * kItems * (kItems + 1) / 2);
}

}  // namespace
}  // namespace rfid
