// Tests for constant folding, including its effect on index selection.
#include <gtest/gtest.h>

#include "common/time_util.h"
#include "expr/eval.h"
#include "plan/planner.h"
#include "sql/parser.h"

namespace rfid {
namespace {

ExprPtr Fold(const std::string& text) {
  auto e = ParseExpression(text);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return FoldConstants(e.value());
}

TEST(FoldTest, ArithmeticFolds) {
  ExprPtr e = Fold("1 + 2 * 3");
  ASSERT_EQ(e->kind, ExprKind::kLiteral);
  EXPECT_EQ(e->value.int64_value(), 7);
}

TEST(FoldTest, TimestampPlusIntervalFolds) {
  ExprPtr e = Fold("TIMESTAMP 100 + 5 MINUTES");
  ASSERT_EQ(e->kind, ExprKind::kLiteral);
  EXPECT_EQ(e->value.type(), DataType::kTimestamp);
  EXPECT_EQ(e->value.timestamp_value(), 100 + Minutes(5));
}

TEST(FoldTest, ComparisonFoldsWithinPredicate) {
  // The column side stays; the computed bound becomes a literal.
  ExprPtr e = Fold("rtime <= TIMESTAMP 100 + 5 MINUTES");
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->children[0]->kind, ExprKind::kColumnRef);
  ASSERT_EQ(e->children[1]->kind, ExprKind::kLiteral);
  EXPECT_EQ(e->children[1]->value.timestamp_value(), 100 + Minutes(5));
}

TEST(FoldTest, BooleanAndCaseFold) {
  ExprPtr e = Fold("1 = 1 AND NOT 2 > 3");
  ASSERT_EQ(e->kind, ExprKind::kLiteral);
  EXPECT_TRUE(e->value.bool_value());
  e = Fold("CASE WHEN 1 = 2 THEN 'a' ELSE 'b' END");
  ASSERT_EQ(e->kind, ExprKind::kLiteral);
  EXPECT_EQ(e->value.string_value(), "b");
}

TEST(FoldTest, ColumnsBlockFolding) {
  ExprPtr e = Fold("rtime + 1 MINUTES");
  EXPECT_EQ(e->kind, ExprKind::kBinary);
  e = Fold("epc = 'x' OR 1 = 1");
  // The constant disjunct folds but the tree keeps the column reference.
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->children[1]->kind, ExprKind::kLiteral);
}

TEST(FoldTest, IllTypedExpressionLeftIntactForBinderDiagnostics) {
  // TIMESTAMP + INT64 is a type error; folding must not swallow it.
  ExprPtr e = Fold("TIMESTAMP 100 + 5");
  EXPECT_EQ(e->kind, ExprKind::kBinary);
}

TEST(FoldTest, FoldedBoundEnablesIndexScan) {
  Database db;
  Schema s;
  s.AddColumn("epc", DataType::kString);
  s.AddColumn("rtime", DataType::kTimestamp);
  Table* t = db.CreateTable("caseR", s).value();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(t->Append({Value::String("e"), Value::Timestamp(Minutes(i))}).ok());
  }
  ASSERT_TRUE(t->BuildIndex("rtime").ok());
  t->ComputeStats();
  auto res = ExecuteSql(
      db, "SELECT * FROM caseR WHERE rtime <= TIMESTAMP 0 + 9 MINUTES");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows.size(), 10u);
  EXPECT_NE(res->explain.find("IndexRangeScan"), std::string::npos)
      << res->explain;
}

}  // namespace
}  // namespace rfid
