// Static verification layer tests.
//
// Three families:
//  - PlanVerifier: hand-corrupted physical plans, one per invariant
//    class, each rejected with a structured Status naming the phase and
//    the violated invariant (never a crash) — plus clean runs across all
//    three rewrite strategies proving zero false positives.
//  - BytecodeVerifier: the golden expression corpus compiles and
//    verifies, then a fuzz-style single-instruction mutation sweep over
//    every compiled program must reject every guaranteed-corrupt mutant.
//  - RuleLinter: duplicate names, unsatisfiable conditions, DELETE/KEEP
//    overlap, and MODIFY correction races are reported; clean rule sets
//    are not.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/time_util.h"
#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/hash_join.h"
#include "exec/parallel.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "exec/union_all.h"
#include "exec/window.h"
#include "expr/bytecode.h"
#include "expr/eval.h"
#include "plan/planner.h"
#include "rewrite/rewriter.h"
#include "sql/parser.h"
#include "verify/bytecode_verifier.h"
#include "verify/plan_verifier.h"
#include "verify/rule_linter.h"
#include "verify/verify.h"

namespace rfid {
namespace {

class VerifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema reads;
    reads.AddColumn("epc", DataType::kString);
    reads.AddColumn("rtime", DataType::kTimestamp);
    reads.AddColumn("reader", DataType::kString);
    reads.AddColumn("biz_loc", DataType::kString);
    case_r_ = db_.CreateTable("caseR", reads).value();

    Schema locs;
    locs.AddColumn("gln", DataType::kString);
    locs.AddColumn("site", DataType::kString);
    locs_ = db_.CreateTable("locs", locs).value();

    ASSERT_TRUE(
        locs_->Append({Value::String("locA"), Value::String("dc1")}).ok());
    ASSERT_TRUE(
        locs_->Append({Value::String("locB"), Value::String("store1")}).ok());

    const char* readers[] = {"r1", "r2", "readerX"};
    const char* glns[] = {"locA", "locB", "locA"};
    for (int e = 0; e < 4; ++e) {
      for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(case_r_
                        ->Append({Value::String("e" + std::to_string(e)),
                                  Value::Timestamp(Minutes(3 * i + e)),
                                  Value::String(readers[(e + i) % 3]),
                                  Value::String(glns[(e + 2 * i) % 3])})
                        .ok());
      }
    }
    ASSERT_TRUE(case_r_->BuildIndex("rtime").ok());
    ASSERT_TRUE(case_r_->BuildIndex("epc").ok());
    case_r_->ComputeStats();
    locs_->ComputeStats();

    engine_ = std::make_unique<CleansingRuleEngine>(&db_);
    ASSERT_TRUE(engine_
                    ->DefineRule("DEFINE reader ON caseR CLUSTER BY epc "
                                 "SEQUENCE BY rtime AS (A, *B) WHERE "
                                 "B.reader = 'readerX' AND B.rtime - A.rtime "
                                 "< 5 MINUTES ACTION DELETE A")
                    .ok());
    rewriter_ = std::make_unique<QueryRewriter>(&db_, engine_.get());
  }

  void TearDown() override {
    SetVerifyForTest(-1);
    SetParallelPolicyForTest(0, 0);
  }

  // A fresh scan of caseR (4 fields: epc STRING, rtime TIMESTAMP,
  // reader STRING, biz_loc STRING).
  OperatorPtr Scan() {
    return std::make_unique<TableScanOp>(case_r_, "c");
  }

  ExprPtr Bind(const std::string& text, const RowDesc& desc) {
    auto parsed = ParseExpression(text);
    EXPECT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    auto bound = BindExpr(parsed.value(), desc);
    EXPECT_TRUE(bound.ok()) << text << ": " << bound.status().ToString();
    return std::move(bound).value();
  }

  // The corrupted plan must be rejected with the phase and the named
  // invariant in the Status message — and must never crash.
  void ExpectViolation(const Operator& root, const std::string& invariant) {
    Status st = VerifyPlan(root, "test-phase", nullptr);
    ASSERT_FALSE(st.ok()) << "corrupt plan passed verification";
    EXPECT_NE(st.message().find("verify[test-phase]"), std::string::npos)
        << st.ToString();
    EXPECT_NE(st.message().find("invariant=" + invariant), std::string::npos)
        << st.ToString();
  }

  Database db_;
  Table* case_r_ = nullptr;
  Table* locs_ = nullptr;
  std::unique_ptr<CleansingRuleEngine> engine_;
  std::unique_ptr<QueryRewriter> rewriter_;
};

// ---------------------------------------------------------------------
// PlanVerifier: clean plans across every rewrite strategy.
// ---------------------------------------------------------------------

TEST_F(VerifyTest, AllRewriteStrategiesVerifyClean) {
  SetVerifyForTest(1);  // hard errors: any violation fails the query
  const std::string sql = "SELECT epc, rtime FROM caseR WHERE biz_loc = 'locA'";
  std::vector<std::vector<Row>> results;
  for (RewriteStrategy strategy :
       {RewriteStrategy::kNaive, RewriteStrategy::kExpanded,
        RewriteStrategy::kJoinBack}) {
    RewriteOptions opts;
    opts.strategy = strategy;
    auto info = rewriter_->Rewrite(sql, opts);
    ASSERT_TRUE(info.ok()) << RewriteStrategyName(strategy) << ": "
                           << info.status().ToString();
    auto res = ExecuteSql(db_, info.value().sql);
    ASSERT_TRUE(res.ok()) << RewriteStrategyName(strategy) << ": "
                          << res.status().ToString();
    results.push_back(res.value().rows);
  }
  EXPECT_EQ(results[0].size(), results[1].size());
  EXPECT_EQ(results[0].size(), results[2].size());
}

TEST_F(VerifyTest, WellFormedOperatorTreeVerifies) {
  OperatorPtr scan = Scan();
  const RowDesc desc = scan->output_desc();
  auto filter =
      std::make_unique<FilterOp>(std::move(scan), Bind("biz_loc = 'locA'", desc));
  EXPECT_TRUE(VerifyPlan(*filter, "test-phase", nullptr).ok());
}

// ---------------------------------------------------------------------
// PlanVerifier: corruption classes. Each test is one distinct class.
// ---------------------------------------------------------------------

// Class 1: column reference bound to a slot outside the input row.
TEST_F(VerifyTest, RejectsColumnRefSlotOutOfRange) {
  OperatorPtr scan = Scan();
  ExprPtr pred = Bind("biz_loc = 'locA'", scan->output_desc());
  pred->children[0]->slot = 99;
  auto filter = std::make_unique<FilterOp>(std::move(scan), std::move(pred));
  ExpectViolation(*filter, "column-ref-bound");
}

// Class 2: column reference whose declared type disagrees with the slot.
TEST_F(VerifyTest, RejectsColumnRefTypeMismatch) {
  OperatorPtr scan = Scan();
  ExprPtr pred = Bind("biz_loc = 'locA'", scan->output_desc());
  pred->children[0]->slot = 1;  // rtime: TIMESTAMP, but bound as STRING
  auto filter = std::make_unique<FilterOp>(std::move(scan), std::move(pred));
  ExpectViolation(*filter, "column-ref-bound");
}

// Class 3: sort key slot outside the input row.
TEST_F(VerifyTest, RejectsSortKeyOutOfRange) {
  auto sort = std::make_unique<SortOp>(Scan(),
                                       std::vector<SlotSortKey>{{99, true}});
  ExpectViolation(*sort, "sort-keys");
}

// Class 4: window operator fed input that lacks its required
// (PARTITION BY, ORDER BY) ordering.
TEST_F(VerifyTest, RejectsWindowWithoutRequiredOrdering) {
  std::vector<WindowAggSpec> aggs(1);
  aggs[0].func = AggFunc::kCount;
  aggs[0].arg = nullptr;  // COUNT(*)
  aggs[0].output_name = "c";
  aggs[0].result_type = DataType::kInt64;
  auto window = std::make_unique<WindowOp>(
      Scan(), std::vector<size_t>{0}, std::vector<SlotSortKey>{{1, true}},
      std::move(aggs));
  ExpectViolation(*window, "window-ordering");
}

// The same window over a Sort(partition, order) child is legal — the
// ordering propagation must recognize the sort as satisfying it.
TEST_F(VerifyTest, AcceptsWindowOverMatchingSort) {
  auto sort = std::make_unique<SortOp>(
      Scan(), std::vector<SlotSortKey>{{0, true}, {1, true}});
  std::vector<WindowAggSpec> aggs(1);
  aggs[0].func = AggFunc::kCount;
  aggs[0].output_name = "c";
  aggs[0].result_type = DataType::kInt64;
  auto window = std::make_unique<WindowOp>(
      std::move(sort), std::vector<size_t>{0},
      std::vector<SlotSortKey>{{1, true}}, std::move(aggs));
  EXPECT_TRUE(VerifyPlan(*window, "test-phase", nullptr).ok());
}

// Class 5: hash join with mismatched key counts.
TEST_F(VerifyTest, RejectsJoinKeyCountMismatch) {
  auto join = std::make_unique<HashJoinOp>(
      Scan(), Scan(), std::vector<size_t>{0}, std::vector<size_t>{0, 1},
      JoinType::kInner);
  ExpectViolation(*join, "join-keys");
}

// Class 6: hash join keys with incomparable types (STRING vs TIMESTAMP
// would hash-join to an always-empty result).
TEST_F(VerifyTest, RejectsJoinKeyTypeMismatch) {
  auto join = std::make_unique<HashJoinOp>(
      Scan(), Scan(), std::vector<size_t>{0}, std::vector<size_t>{1},
      JoinType::kInner);
  ExpectViolation(*join, "join-keys");
}

// Class 7: operator dop above what the parallel policy permits.
TEST_F(VerifyTest, RejectsDopAbovePolicy) {
  SetParallelPolicyForTest(1, 0);
  auto sort = std::make_unique<SortOp>(
      Scan(), std::vector<SlotSortKey>{{1, true}}, /*dop=*/4);
  ExpectViolation(*sort, "dop-bounds");
}

// Class 8: a ParallelTableScan the planner would never build (dop < 2).
TEST_F(VerifyTest, RejectsSerialParallelScan) {
  auto scan = std::make_unique<ParallelTableScanOp>(case_r_, "c", nullptr,
                                                    /*dop=*/1);
  ExpectViolation(*scan, "dop-bounds");
}

// Class 9: index scan holding a foreign index (an index of a different
// table — the read path would surface the wrong rows).
TEST_F(VerifyTest, RejectsForeignIndexPointer) {
  Schema other;
  other.AddColumn("epc", DataType::kString);
  Table* shadow = db_.CreateTable("shadow", other).value();
  ASSERT_TRUE(shadow->Append({Value::String("e0")}).ok());
  ASSERT_TRUE(shadow->BuildIndex("epc").ok());
  auto scan = std::make_unique<IndexRangeScanOp>(
      case_r_, shadow->GetIndex("epc"), "c", std::nullopt, std::nullopt);
  ExpectViolation(*scan, "snapshot-index");
}

// Class 10: index scan holding a stale index (built before the last
// mutation — it would miss or misplace rows).
TEST_F(VerifyTest, RejectsStaleIndexPointer) {
  const SortedIndex* index = case_r_->GetIndex("epc");
  ASSERT_NE(index, nullptr);
  // Appending invalidates the index; the scan still holds the old pointer.
  ASSERT_TRUE(case_r_
                  ->Append({Value::String("e9"), Value::Timestamp(Minutes(99)),
                            Value::String("r1"), Value::String("locA")})
                  .ok());
  ASSERT_EQ(case_r_->GetIndex("epc"), nullptr);
  auto scan = std::make_unique<IndexRangeScanOp>(case_r_, index, "c",
                                                 std::nullopt, std::nullopt);
  ExpectViolation(*scan, "snapshot-index");
}

// Class 11: projection whose expression count disagrees with its
// declared output schema.
TEST_F(VerifyTest, RejectsProjectArityMismatch) {
  OperatorPtr scan = Scan();
  const RowDesc in = scan->output_desc();
  std::vector<ExprPtr> exprs;
  exprs.push_back(Bind("epc", in));
  RowDesc out;
  out.AddField("", "epc", DataType::kString);
  out.AddField("", "ghost", DataType::kInt64);
  auto project =
      std::make_unique<ProjectOp>(std::move(scan), std::move(exprs), out);
  ExpectViolation(*project, "output-schema");
}

// Class 12: UNION ALL over inputs of differing arity.
TEST_F(VerifyTest, RejectsUnionArityMismatch) {
  std::vector<OperatorPtr> inputs;
  inputs.push_back(Scan());  // 4 fields
  inputs.push_back(std::make_unique<TableScanOp>(locs_, "l"));  // 2 fields
  auto u = std::make_unique<UnionAllOp>(std::move(inputs));
  ExpectViolation(*u, "output-schema");
}

// Class 13: a non-COUNT aggregate with no argument expression.
TEST_F(VerifyTest, RejectsArglessNonCountAggregate) {
  std::vector<AggSpec> aggs(1);
  aggs[0].func = AggFunc::kSum;
  aggs[0].arg = nullptr;
  aggs[0].result_type = DataType::kInt64;
  RowDesc out;
  out.AddField("", "s", DataType::kInt64);
  auto agg = std::make_unique<HashAggregateOp>(Scan(), std::vector<ExprPtr>{},
                                               std::move(aggs), out);
  ExpectViolation(*agg, "output-schema");
}

// Class 14: operator with a missing required input piece.
TEST_F(VerifyTest, RejectsFilterWithoutPredicate) {
  auto filter = std::make_unique<FilterOp>(Scan(), nullptr);
  ExpectViolation(*filter, "null-child");
}

// ---------------------------------------------------------------------
// BytecodeVerifier.
// ---------------------------------------------------------------------

RowDesc CorpusDesc() {
  RowDesc d;
  d.AddField("t", "a", DataType::kInt64);
  d.AddField("t", "b", DataType::kInt64);
  d.AddField("t", "x", DataType::kDouble);
  d.AddField("t", "s", DataType::kString);
  d.AddField("t", "ts", DataType::kTimestamp);
  return d;
}

// Well-typed expressions over CorpusDesc covering every opcode the
// compiler emits (the golden corpus of expr_golden_test, abridged).
const char* const kCorpus[] = {
    "a + b", "a / b", "x * 2", "a < b", "s = 'abc'", "ts < TIMESTAMP 1000",
    "a < b AND b < 10", "a < b OR b < 10", "NOT a = b", "a IS NULL",
    "a IS NOT NULL", "a BETWEEN 0 AND 5", "a IN (1, 2, 3)",
    "a NOT IN (1, NULL)", "s IN ('abc', 'xyz')",
    "CASE WHEN a < b THEN a ELSE b END",
    "CASE WHEN a IS NULL THEN 0 WHEN a > 5 THEN 1 END",
    "coalesce(a, b, 0)", "s LIKE 'a%'", "s NOT LIKE '%z%'",
    "(a + b) * 2 > 10 OR s LIKE 'x%'",
};

class BytecodeVerifierTest : public ::testing::Test {
 protected:
  // Compiles `text` bound over CorpusDesc; nullopt when the compiler
  // declines (those expressions fall back to the interpreter and are
  // outside the verifier's scope).
  std::optional<ExprProgram> Compile(const std::string& text) {
    auto parsed = ParseExpression(text);
    EXPECT_TRUE(parsed.ok()) << text;
    auto bound = BindExpr(parsed.value(), desc_);
    EXPECT_TRUE(bound.ok()) << text;
    auto compiled = ExprProgram::Compile(*bound.value());
    if (!compiled.ok()) return std::nullopt;
    return std::move(compiled).value();
  }

  RowDesc desc_ = CorpusDesc();
};

TEST_F(BytecodeVerifierTest, GoldenCorpusVerifies) {
  size_t compiled_count = 0;
  for (const char* text : kCorpus) {
    std::optional<ExprProgram> p = Compile(text);
    if (!p.has_value()) continue;
    ++compiled_count;
    Status st = VerifyProgram(*p, desc_);
    EXPECT_TRUE(st.ok()) << text << ": " << st.ToString();
  }
  // The corpus is chosen to compile; if the compiler starts declining
  // everything this test would silently verify nothing.
  EXPECT_GT(compiled_count, 15u);
}

TEST_F(BytecodeVerifierTest, RejectsEmptyProgram) {
  Status st = VerifyBytecode(BytecodeImage{}, desc_);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("invariant=non-empty"), std::string::npos);
}

TEST_F(BytecodeVerifierTest, RejectsStackUnderflow) {
  BytecodeImage image;
  image.code.push_back({BcOp::kNot, 0, 0, DataType::kBool});
  image.max_stack = 1;
  Status st = VerifyBytecode(image, desc_);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("invariant=stack-underflow"), std::string::npos);
}

TEST_F(BytecodeVerifierTest, RejectsUnbalancedStack) {
  BytecodeImage image;
  image.code.push_back({BcOp::kLoadCol, 0, 0, DataType::kInt64});
  image.code.push_back({BcOp::kLoadCol, 1, 0, DataType::kInt64});
  image.max_stack = 2;
  Status st = VerifyBytecode(image, desc_);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("invariant=stack-balance"), std::string::npos);
}

// Fuzz-style sweep: for every compiled corpus program, apply every
// guaranteed-corrupt single-instruction mutation and require rejection.
// Mutations are chosen so a correct verifier can never accept them:
// unknown opcode bytes, pool indices far out of range, invalid operator
// codes and flags, and a zeroed register budget.
TEST_F(BytecodeVerifierTest, MutationSweepRejectsEveryCorruption) {
  size_t mutations = 0;
  for (const char* text : kCorpus) {
    std::optional<ExprProgram> p = Compile(text);
    if (!p.has_value()) continue;
    const BytecodeImage original = p->Image();
    ASSERT_TRUE(VerifyBytecode(original, desc_).ok()) << text;

    auto expect_rejected = [&](const BytecodeImage& mutant, size_t idx,
                               const char* what) {
      ++mutations;
      Status st = VerifyBytecode(mutant, desc_);
      EXPECT_FALSE(st.ok()) << text << ": instruction " << idx << ": " << what
                            << " was accepted";
    };

    for (size_t i = 0; i < original.code.size(); ++i) {
      const BcInst inst = original.code[i];
      {
        BytecodeImage m = original;
        m.code[i].op = static_cast<BcOp>(255);
        expect_rejected(m, i, "opcode byte 255");
      }
      switch (inst.op) {
        case BcOp::kLoadCol:
        case BcOp::kLoadConst: {
          BytecodeImage m = original;
          m.code[i].a = inst.a + 1000000;
          expect_rejected(m, i, "pool index far out of range");
          m = original;
          m.code[i].a = -1;
          expect_rejected(m, i, "negative pool index");
          break;
        }
        case BcOp::kCompare:
        case BcOp::kArith: {
          BytecodeImage m = original;
          m.code[i].a = 99;
          expect_rejected(m, i, "invalid operator code");
          break;
        }
        case BcOp::kCase: {
          BytecodeImage m = original;
          m.code[i].b = 5;
          expect_rejected(m, i, "has_else flag 5");
          m = original;
          m.code[i].a = 0;
          expect_rejected(m, i, "zero WHEN/THEN pairs");
          break;
        }
        case BcOp::kIsNull: {
          BytecodeImage m = original;
          m.code[i].b = 5;
          expect_rejected(m, i, "negation flag 5");
          break;
        }
        case BcOp::kInValueSet: {
          BytecodeImage m = original;
          m.code[i].a = 1000000;
          expect_rejected(m, i, "set index out of range");
          break;
        }
        case BcOp::kInList:
        case BcOp::kCoalesce: {
          BytecodeImage m = original;
          m.code[i].a = 0;
          expect_rejected(m, i, "zero arity");
          break;
        }
        default:
          break;
      }
    }

    bool has_load = false;
    for (const BcInst& inst : original.code) {
      if (inst.op == BcOp::kLoadCol || inst.op == BcOp::kLoadConst) {
        has_load = true;
      }
    }
    if (has_load && original.max_stack > 0) {
      BytecodeImage m = original;
      m.max_stack = 0;
      expect_rejected(m, 0, "max_stack zeroed");
    }
  }
  // The sweep must have actually exercised a broad mutant population.
  EXPECT_GT(mutations, 100u);
}

TEST_F(BytecodeVerifierTest, FilterProgramConjunctsVerify) {
  auto parsed = ParseExpression("a < b AND s = 'abc' AND x > 0");
  ASSERT_TRUE(parsed.ok());
  auto bound = BindExpr(parsed.value(), desc_);
  ASSERT_TRUE(bound.ok());
  auto compiled = FilterProgram::Compile(*bound.value());
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(VerifyProgram(compiled.value(), desc_).ok());
}

TEST_F(BytecodeVerifierTest, CompileVerifiedReturnsProgramWhenClean) {
  SetVerifyForTest(1);
  auto parsed = ParseExpression("a + b");
  ASSERT_TRUE(parsed.ok());
  auto bound = BindExpr(parsed.value(), desc_);
  ASSERT_TRUE(bound.ok());
  auto result = CompileVerified(*bound.value(), desc_, "test");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().has_value());
  SetVerifyForTest(-1);
}

TEST_F(BytecodeVerifierTest, ModeSwitchesResolve) {
  SetVerifyForTest(1);
  EXPECT_TRUE(VerifyEnabled());
  EXPECT_FALSE(VerifySoftMode());
  SetVerifyForTest(2);
  EXPECT_TRUE(VerifyEnabled());
  EXPECT_TRUE(VerifySoftMode());
  SetVerifyForTest(0);
  EXPECT_FALSE(VerifyEnabled());
  SetVerifyForTest(-1);
}

// ---------------------------------------------------------------------
// RuleLinter.
// ---------------------------------------------------------------------

ExprPtr ParseCondition(const std::string& text) {
  auto parsed = ParseExpression(text);
  EXPECT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
  return parsed.ok() ? std::move(parsed).value() : nullptr;
}

CleansingRule MakeRule(const std::string& name, RuleAction action,
                       const std::string& condition) {
  CleansingRule r;
  r.name = name;
  r.on_table = "caseR";
  r.ckey = "epc";
  r.skey = "rtime";
  r.pattern = {{"A", false}, {"B", true}};
  r.condition = ParseCondition(condition);
  r.action = action;
  r.target = "A";
  return r;
}

bool HasFinding(const std::vector<LintFinding>& findings,
                const std::string& code) {
  for (const LintFinding& f : findings) {
    if (f.code == code) return true;
  }
  return false;
}

TEST(RuleLinterTest, CleanRuleSetHasNoFindings) {
  std::vector<CleansingRule> rules;
  rules.push_back(MakeRule("reader", RuleAction::kDelete,
                           "B.reader = 'readerX' AND B.rtime > 100"));
  EXPECT_TRUE(LintRules(rules).empty());
}

TEST(RuleLinterTest, ReportsDuplicateNames) {
  std::vector<CleansingRule> rules;
  rules.push_back(MakeRule("reader", RuleAction::kDelete, "B.rtime > 100"));
  rules.push_back(MakeRule("READER", RuleAction::kDelete, "B.rtime < 50"));
  std::vector<LintFinding> findings = LintRules(rules);
  EXPECT_TRUE(HasFinding(findings, "duplicate-name"));
}

TEST(RuleLinterTest, ReportsConstantFalseConjunct) {
  std::vector<CleansingRule> rules;
  rules.push_back(
      MakeRule("dead", RuleAction::kDelete, "B.reader = 'readerX' AND 1 = 2"));
  std::vector<LintFinding> findings = LintRules(rules);
  ASSERT_TRUE(HasFinding(findings, "unsatisfiable-condition"));
}

TEST(RuleLinterTest, ReportsEmptyIntervalConjunction) {
  std::vector<CleansingRule> rules;
  rules.push_back(MakeRule("dead", RuleAction::kDelete,
                           "B.rtime > 100 AND B.rtime < 50"));
  std::vector<LintFinding> findings = LintRules(rules);
  ASSERT_TRUE(HasFinding(findings, "unsatisfiable-condition"));
}

TEST(RuleLinterTest, EquivalentBoundsAreSatisfiable) {
  std::vector<CleansingRule> rules;
  rules.push_back(MakeRule("alive", RuleAction::kDelete,
                           "B.rtime >= 100 AND B.rtime <= 100"));
  EXPECT_FALSE(HasFinding(LintRules(rules), "unsatisfiable-condition"));
}

TEST(RuleLinterTest, ReportsDeleteKeepOverlap) {
  std::vector<CleansingRule> rules;
  rules.push_back(MakeRule("drop_x", RuleAction::kDelete,
                           "B.reader = 'readerX' AND B.rtime > 100"));
  rules.push_back(MakeRule("keep_x", RuleAction::kKeep,
                           "B.reader = 'readerX' AND B.rtime > 200"));
  std::vector<LintFinding> findings = LintRules(rules);
  EXPECT_TRUE(HasFinding(findings, "delete-keep-overlap"));
}

TEST(RuleLinterTest, DisjointDeleteKeepIsClean) {
  std::vector<CleansingRule> rules;
  rules.push_back(
      MakeRule("drop_lo", RuleAction::kDelete, "B.rtime < 100"));
  rules.push_back(MakeRule("keep_hi", RuleAction::kKeep, "B.rtime > 200"));
  EXPECT_FALSE(HasFinding(LintRules(rules), "delete-keep-overlap"));
}

TEST(RuleLinterTest, ReportsCorrectionOrderRace) {
  CleansingRule a = MakeRule("fix1", RuleAction::kModify, "B.rtime > 100");
  a.assignments.push_back({"biz_loc", ParseCondition("'loc1'")});
  CleansingRule b = MakeRule("fix2", RuleAction::kModify, "B.rtime > 50");
  b.assignments.push_back({"BIZ_LOC", ParseCondition("'loc2'")});
  std::vector<CleansingRule> rules;
  rules.push_back(std::move(a));
  rules.push_back(std::move(b));
  std::vector<LintFinding> findings = LintRules(rules);
  EXPECT_TRUE(HasFinding(findings, "correction-order"));
}

TEST(RuleLinterTest, LintRulesForScopesToTable) {
  std::vector<CleansingRule> rules;
  rules.push_back(MakeRule("dead", RuleAction::kDelete, "1 = 2"));
  CleansingRule other = MakeRule("other_dead", RuleAction::kDelete, "1 = 2");
  other.on_table = "pallets";
  rules.push_back(std::move(other));
  std::vector<LintFinding> scoped = LintRulesFor(rules, "caseR");
  ASSERT_EQ(scoped.size(), 1u);
  EXPECT_EQ(scoped[0].rule, "dead");
  EXPECT_EQ(scoped[0].code, "unsatisfiable-condition");
  EXPECT_NE(scoped[0].ToString().find("LINT"), std::string::npos);
}

// End-to-end: the rewriter carries lint findings for the cleansed table
// so EXPLAIN and rfidsql can surface them next to the chosen rewrite.
TEST_F(VerifyTest, RewriteInfoCarriesLintFindings) {
  ASSERT_TRUE(engine_
                  ->DefineRule("DEFINE keeper ON caseR CLUSTER BY epc "
                               "SEQUENCE BY rtime AS (A, *B) WHERE "
                               "B.reader = 'readerX' AND B.rtime - A.rtime "
                               "< 9 MINUTES ACTION KEEP A")
                  .ok());
  RewriteOptions opts;
  opts.strategy = RewriteStrategy::kNaive;
  auto info = rewriter_->Rewrite(
      "SELECT epc, rtime FROM caseR WHERE biz_loc = 'locA'", opts);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(HasFinding(info.value().lint, "delete-keep-overlap"));
}

}  // namespace
}  // namespace rfid
