// Cleansed-fragment cache: region schemes, watermark validity, LRU
// memory bounds, the stitched execution path's bit-identity with the
// uncached rewrites (serial and parallel, cold and warm), and the
// invalidation interplay with the SQL server's plan cache under live
// ingest.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cache/fragment_cache.h"
#include "exec/parallel.h"
#include "ingest/ingest.h"
#include "plan/planner.h"
#include "rewrite/fragment_stitch.h"
#include "rewrite/rewriter.h"
#include "rfidgen/anomaly.h"
#include "rfidgen/rfidgen.h"
#include "rfidgen/stream.h"
#include "rfidgen/workload.h"
#include "server/client.h"
#include "server/server.h"

namespace rfid {
namespace {

using cache::FragmentCache;
using cache::FragmentCacheOptions;
using cache::FragmentKey;
using cache::RegionSchemePtr;

// Exact, order-sensitive, bit-exact serialization: the stitched plan
// must reproduce the uncached output *row for row*.
std::string BitExact(const Value& v) {
  if (v.type() == DataType::kDouble) {
    uint64_t bits = 0;
    double d = v.double_value();
    std::memcpy(&bits, &d, sizeof(bits));
    return "d:" + std::to_string(bits);
  }
  return std::string(DataTypeName(v.type())) + ":" + v.ToString();
}

std::string Exact(const std::vector<Row>& rows) {
  std::string out;
  for (const Row& r : rows) {
    for (const Value& v : r) out += BitExact(v) + "|";
    out += "\n";
  }
  return out;
}

std::vector<std::string> Sorted(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  for (const Row& r : rows) {
    std::string s;
    for (const Value& v : r) s += BitExact(v) + "|";
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

void GenDirty(Database* db, int64_t pallets, double dirty_pct) {
  rfidgen::GeneratorOptions gen;
  gen.num_pallets = pallets;
  ASSERT_TRUE(rfidgen::Generate(gen, db).ok());
  rfidgen::AnomalyOptions anomalies;
  anomalies.dirty_fraction = dirty_pct / 100.0;
  ASSERT_TRUE(rfidgen::InjectAnomalies(anomalies, db).ok());
}

std::unique_ptr<CleansingRuleEngine> MakeEngine(Database* db, int num_rules) {
  auto engine = std::make_unique<CleansingRuleEngine>(db);
  for (const std::string& def :
       workload::StandardRuleDefinitions(num_rules)) {
    Status st = engine->DefineRule(def);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return engine;
}

// Runs `sql` through the uncached rewrite with `strategy` and executes
// it. Returns false when the strategy has no feasible rewrite.
bool RunUncached(Database* db, CleansingRuleEngine* engine,
                 const std::string& sql, RewriteStrategy strategy,
                 QueryResult* out) {
  QueryRewriter rewriter(db, engine);
  RewriteOptions opts;
  opts.strategy = strategy;
  auto info = rewriter.Rewrite(sql, opts);
  if (!info.ok()) return false;
  auto res = ExecuteSql(*db, info->sql);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  *out = std::move(*res);
  return true;
}

// Runs `sql` through the fragment-cache stitch and executes it with the
// bindings installed on the context. Asserts the stitch applied.
QueryResult RunStitched(Database* db, CleansingRuleEngine* engine,
                        FragmentCache* cache, const std::string& sql,
                        size_t* hits = nullptr, size_t* misses = nullptr,
                        SnapshotPtr snapshot = nullptr) {
  ExecContext ctx;
  if (snapshot != nullptr) ctx.set_snapshot(snapshot);
  auto stitch = StitchWithFragmentCache(sql, db, *engine, cache, &ctx);
  EXPECT_TRUE(stitch.ok()) << stitch.status().ToString();
  EXPECT_TRUE(stitch->used) << "stitch not used: " << stitch->reason;
  if (hits != nullptr) *hits = stitch->hits;
  if (misses != nullptr) *misses = stitch->misses;
  auto res = ExecuteSql(*db, stitch->sql, &ctx);
  EXPECT_TRUE(res.ok()) << res.status().ToString() << "\nsql: " << stitch->sql;
  return res.ok() ? std::move(*res) : QueryResult{};
}

// --- region schemes ---

TEST(RegionSchemeTest, RegionOfAgreesWithRegionPredicateSql) {
  Database db;
  GenDirty(&db, 5, 10);
  const Table* caseR = db.GetTable("caseR");
  ASSERT_NE(caseR, nullptr);

  FragmentCacheOptions opt;
  opt.target_region_rows = 1024;
  opt.max_regions = 8;
  FragmentCache cache(opt);
  RegionSchemePtr scheme =
      cache.SchemeFor(*caseR, "epc", caseR->visible_rows());
  ASSERT_NE(scheme, nullptr);
  ASSERT_GT(scheme->num_regions(), 1u) << "want a real partition";

  // Every row lands in exactly the region whose SQL predicate selects it.
  std::vector<uint64_t> by_region(scheme->num_regions(), 0);
  for (size_t i = 0; i < caseR->num_rows(); ++i) {
    ++by_region[scheme->RegionOf(caseR->row(i)[scheme->ckey_slot])];
  }
  uint64_t total = 0;
  for (size_t r = 0; r < scheme->num_regions(); ++r) {
    std::string pred = scheme->RegionPredicateSql(r);
    ASSERT_FALSE(pred.empty());
    auto res = ExecuteSql(
        db, "SELECT count(*) FROM caseR WHERE " + pred);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ASSERT_EQ(res->rows.size(), 1u);
    uint64_t n = static_cast<uint64_t>(res->rows[0][0].int64_value());
    EXPECT_EQ(n, by_region[r]) << "region " << r << ": " << pred;
    total += n;
  }
  EXPECT_EQ(total, caseR->num_rows()) << "regions must partition the table";
}

TEST(RegionSchemeTest, OneSchemePerTableAndStableAcrossCalls) {
  Database db;
  GenDirty(&db, 3, 10);
  const Table* caseR = db.GetTable("caseR");
  FragmentCache cache;
  RegionSchemePtr first = cache.SchemeFor(*caseR, "epc", caseR->visible_rows());
  ASSERT_NE(first, nullptr);
  // Same ckey: the same scheme object. Different ckey: refused.
  EXPECT_EQ(cache.SchemeFor(*caseR, "EPC", caseR->visible_rows()), first);
  EXPECT_EQ(cache.SchemeFor(*caseR, "reader", caseR->visible_rows()), nullptr);
  // Unknown column: refused.
  Database db2;
  GenDirty(&db2, 3, 10);
  FragmentCache cache2;
  EXPECT_EQ(cache2.SchemeFor(*db2.GetTable("caseR"), "nope", 10), nullptr);
}

// --- cache watermark validity ---

class FragmentCacheValidityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GenDirty(&db_, 3, 10);
    caseR_ = db_.GetTable("caseR");
    ASSERT_NE(caseR_, nullptr);
    w0_ = caseR_->visible_rows();
  }

  FragmentKey KeyFor(const RegionSchemePtr& scheme, size_t region) {
    return FragmentKey{"caser", /*rule_fingerprint=*/42, scheme->fingerprint,
                       region};
  }

  std::vector<Row> SomeRows() {
    return {caseR_->row(0), caseR_->row(1)};
  }

  Database db_;
  const Table* caseR_ = nullptr;
  uint64_t w0_ = 0;
};

TEST_F(FragmentCacheValidityTest, InsertThenLookupHitsAtSameWatermark) {
  FragmentCache cache;
  RegionSchemePtr scheme = cache.SchemeFor(*caseR_, "epc", w0_);
  ASSERT_NE(scheme, nullptr);
  FragmentKey key = KeyFor(scheme, 0);

  EXPECT_EQ(cache.Lookup(key, w0_), nullptr);
  cache.Insert(key, w0_, SomeRows());
  auto hit = cache.Lookup(key, w0_);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 2u);
  auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_GT(s.resident_bytes, 0u);
}

TEST_F(FragmentCacheValidityTest, OlderSnapshotNeverSeesNewerFragment) {
  // A query pinned below the watermark the fragment was built at must
  // miss: the fragment includes rows invisible to that snapshot.
  FragmentCache cache;
  RegionSchemePtr scheme = cache.SchemeFor(*caseR_, "epc", w0_);
  FragmentKey key = KeyFor(scheme, 0);
  cache.Insert(key, w0_, SomeRows());
  ASSERT_NE(cache.Lookup(key, w0_), nullptr);
  EXPECT_EQ(cache.Lookup(key, w0_ - 1), nullptr);
  EXPECT_GE(cache.stats().invalidations, 1u);
}

TEST_F(FragmentCacheValidityTest, StaleBuildIsRejected) {
  // A fragment built from a snapshot older than the region's last touch
  // must not be published.
  FragmentCache cache;
  RegionSchemePtr scheme = cache.SchemeFor(*caseR_, "epc", w0_);
  FragmentKey key = KeyFor(scheme, 0);
  cache.Insert(key, w0_ - 1, SomeRows());  // built below the seed touch
  EXPECT_EQ(cache.Lookup(key, w0_), nullptr);
  EXPECT_EQ(cache.stats().inserts, 0u);
}

TEST_F(FragmentCacheValidityTest, OnIngestInvalidatesOnlyTouchedRegions) {
  FragmentCacheOptions opt;
  opt.target_region_rows = 512;
  opt.max_regions = 8;
  FragmentCache cache(opt);
  RegionSchemePtr scheme = cache.SchemeFor(*caseR_, "epc", w0_);
  ASSERT_GT(scheme->num_regions(), 2u);

  for (size_t r = 0; r < scheme->num_regions(); ++r) {
    cache.Insert(KeyFor(scheme, r), w0_, SomeRows());
  }
  ASSERT_EQ(cache.stats().entries, scheme->num_regions());

  // Ingest one row whose ckey lands in a single known region.
  Row row = caseR_->row(0);
  size_t touched = scheme->RegionOf(row[scheme->ckey_slot]);
  cache.OnIngest(*caseR_, {row}, w0_ + 1);

  EXPECT_EQ(cache.stats().entries, scheme->num_regions() - 1)
      << "exactly the touched region's entry must drop";
  EXPECT_EQ(cache.Lookup(KeyFor(scheme, touched), w0_ + 1), nullptr);
  for (size_t r = 0; r < scheme->num_regions(); ++r) {
    if (r == touched) continue;
    EXPECT_NE(cache.Lookup(KeyFor(scheme, r), w0_ + 1), nullptr)
        << "untouched region " << r << " must survive the ingest";
  }
}

TEST_F(FragmentCacheValidityTest, UnnotifiedAdvanceIsAbsorbedConservatively) {
  FragmentCache cache;
  RegionSchemePtr scheme = cache.SchemeFor(*caseR_, "epc", w0_);
  FragmentKey key = KeyFor(scheme, 0);
  cache.Insert(key, w0_, SomeRows());
  // A query watermark the cache was never notified about: rows were
  // appended without OnIngest, so every entry of the table must drop.
  EXPECT_EQ(cache.Lookup(key, w0_ + 100), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  // And the entry cannot be resurrected by an old-watermark build.
  cache.Insert(key, w0_, SomeRows());
  EXPECT_EQ(cache.Lookup(key, w0_ + 100), nullptr);
}

TEST_F(FragmentCacheValidityTest, LruEvictsByResidentBytes) {
  FragmentCacheOptions opt;
  opt.target_region_rows = 512;
  opt.max_regions = 8;
  FragmentCache cache(opt);
  RegionSchemePtr scheme = cache.SchemeFor(*caseR_, "epc", w0_);
  ASSERT_GE(scheme->num_regions(), 3u);

  cache.Insert(KeyFor(scheme, 0), w0_, SomeRows());
  size_t per_entry = cache.stats().resident_bytes;
  ASSERT_GT(per_entry, 0u);
  cache.set_capacity_bytes(2 * per_entry + per_entry / 2);

  cache.Insert(KeyFor(scheme, 1), w0_, SomeRows());
  EXPECT_EQ(cache.stats().entries, 2u);
  // Touch region 0 so region 1 is the LRU victim.
  ASSERT_NE(cache.Lookup(KeyFor(scheme, 0), w0_), nullptr);
  cache.Insert(KeyFor(scheme, 2), w0_, SomeRows());

  auto s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_LE(s.resident_bytes, cache.capacity_bytes());
  EXPECT_NE(cache.Lookup(KeyFor(scheme, 0), w0_), nullptr);
  EXPECT_EQ(cache.Lookup(KeyFor(scheme, 1), w0_), nullptr) << "LRU victim";
  EXPECT_NE(cache.Lookup(KeyFor(scheme, 2), w0_), nullptr);
}

TEST_F(FragmentCacheValidityTest, DisabledCacheServesNothingAndDropsState) {
  FragmentCache cache;
  RegionSchemePtr scheme = cache.SchemeFor(*caseR_, "epc", w0_);
  FragmentKey key = KeyFor(scheme, 0);
  cache.Insert(key, w0_, SomeRows());
  cache.set_enabled(false);
  EXPECT_EQ(cache.SchemeFor(*caseR_, "epc", w0_), nullptr);
  EXPECT_EQ(cache.Lookup(key, w0_), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  cache.set_enabled(true);
  EXPECT_EQ(cache.Lookup(key, w0_), nullptr) << "state was wiped";
}

// --- rule-set fingerprints ---

TEST(FingerprintRulesTest, ContentBasedAcrossCatalogs) {
  Database db1, db2;
  GenDirty(&db1, 2, 10);
  GenDirty(&db2, 2, 10);
  auto e1 = MakeEngine(&db1, 3);
  auto e2 = MakeEngine(&db2, 3);
  // Identical definitions in distinct catalogs: identical fingerprints.
  EXPECT_EQ(FingerprintRules(e1->RulesFor("caseR")),
            FingerprintRules(e2->RulesFor("caseR")));
  // A different rule set moves the fingerprint.
  auto e3 = MakeEngine(&db2, 2);
  Database db3;
  GenDirty(&db3, 2, 10);
  auto e4 = MakeEngine(&db3, 4);
  EXPECT_NE(FingerprintRules(e1->RulesFor("caseR")),
            FingerprintRules(e3->RulesFor("caseR")));
  EXPECT_NE(FingerprintRules(e1->RulesFor("caseR")),
            FingerprintRules(e4->RulesFor("caseR")));
}

// --- stitched execution: bit-identity with the uncached rewrites ---

class FragmentStitchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GenDirty(&db_, 5, 15);
    engine_ = MakeEngine(&db_, 3);
    t1_ = workload::T1ForSelectivity(db_, 0.6);
    queries_ = {
        workload::Q1(t1_),
        "SELECT epc, biz_loc FROM caseR WHERE rtime <= TIMESTAMP " +
            std::to_string(t1_),
        "SELECT count(*) FROM caseR",
    };
    opt_.target_region_rows = 1024;
    opt_.max_regions = 8;
  }

  Database db_;
  std::unique_ptr<CleansingRuleEngine> engine_;
  int64_t t1_ = 0;
  std::vector<std::string> queries_;
  FragmentCacheOptions opt_;
};

TEST_F(FragmentStitchTest, ColdAndWarmMatchAllStrategiesBitExact) {
  FragmentCache cache(opt_);
  bool first_query = true;
  for (const std::string& sql : queries_) {
    QueryResult naive;
    ASSERT_TRUE(
        RunUncached(&db_, engine_.get(), sql, RewriteStrategy::kNaive, &naive));

    size_t hits = 0, misses = 0;
    QueryResult cold =
        RunStitched(&db_, engine_.get(), &cache, sql, &hits, &misses);
    if (first_query) {
      // Truly cold: every region is a miss.
      EXPECT_EQ(hits, 0u) << sql;
      EXPECT_GT(misses, 0u) << sql;
      first_query = false;
    } else {
      // Fragments key on (table, rules, region) — not the query text —
      // so a *different* query over the same ruled table reuses them.
      EXPECT_GT(hits, 0u) << sql;
      EXPECT_EQ(misses, 0u) << sql;
    }
    EXPECT_EQ(Exact(cold.rows), Exact(naive.rows)) << "cold: " << sql;

    QueryResult warm =
        RunStitched(&db_, engine_.get(), &cache, sql, &hits, &misses);
    EXPECT_GT(hits, 0u) << sql;
    EXPECT_EQ(misses, 0u) << sql;
    EXPECT_EQ(Exact(warm.rows), Exact(naive.rows)) << "warm: " << sql;

    // Expanded / join-back produce the same multiset of rows.
    for (RewriteStrategy strategy :
         {RewriteStrategy::kExpanded, RewriteStrategy::kJoinBack}) {
      QueryResult other;
      if (!RunUncached(&db_, engine_.get(), sql, strategy, &other)) continue;
      EXPECT_EQ(Sorted(warm.rows), Sorted(other.rows)) << sql;
    }
  }
}

TEST_F(FragmentStitchTest, ParallelStitchedMatchesSerialBitExact) {
  FragmentCache cache(opt_);
  const std::string sql = queries_[1];  // wide scan: parallel-eligible
  SetParallelPolicyForTest(1, 0);
  QueryResult serial = RunStitched(&db_, engine_.get(), &cache, sql);
  SetParallelPolicyForTest(4, /*min_parallel_rows=*/64);
  QueryResult parallel = RunStitched(&db_, engine_.get(), &cache, sql);
  QueryResult parallel_cold;
  {
    FragmentCache fresh(opt_);
    parallel_cold = RunStitched(&db_, engine_.get(), &fresh, sql);
  }
  SetParallelPolicyForTest(0, 0);  // restore defaults
  EXPECT_EQ(Exact(serial.rows), Exact(parallel.rows));
  EXPECT_EQ(Exact(serial.rows), Exact(parallel_cold.rows));
}

TEST_F(FragmentStitchTest, IneligibleShapesFallBackWithAReason) {
  FragmentCache cache(opt_);
  ExecContext ctx;
  // Self-join: two occurrences of the ruled table.
  auto self_join = StitchWithFragmentCache(
      "SELECT a.epc FROM caseR a, caseR b WHERE a.epc = b.epc", &db_,
      *engine_, &cache, &ctx);
  ASSERT_TRUE(self_join.ok());
  EXPECT_FALSE(self_join->used);
  EXPECT_FALSE(self_join->reason.empty());
  // No ruled table at all.
  auto unruled = StitchWithFragmentCache("SELECT * FROM epc_info", &db_,
                                         *engine_, &cache, &ctx);
  ASSERT_TRUE(unruled.ok());
  EXPECT_FALSE(unruled->used);
  // A rule set with a derived (FROM ...) input is ineligible.
  auto derived_engine = MakeEngine(&db_, 5);
  auto derived = StitchWithFragmentCache(queries_[2], &db_, *derived_engine,
                                         &cache, &ctx);
  ASSERT_TRUE(derived.ok());
  EXPECT_FALSE(derived->used);
  EXPECT_FALSE(derived->reason.empty());
}

TEST_F(FragmentStitchTest, RuleContentChangeMovesTheKey) {
  FragmentCache cache(opt_);
  size_t hits = 0, misses = 0;
  RunStitched(&db_, engine_.get(), &cache, queries_[2], &hits, &misses);
  ASSERT_GT(misses, 0u);
  // Re-running with a *different* rule set must not reuse the fragments.
  auto two_rules = MakeEngine(&db_, 2);
  RunStitched(&db_, two_rules.get(), &cache, queries_[2], &hits, &misses);
  EXPECT_EQ(hits, 0u);
  EXPECT_GT(misses, 0u);
  // While an identical catalog (fresh engine, same definitions) does.
  auto same_rules = MakeEngine(&db_, 3);
  RunStitched(&db_, same_rules.get(), &cache, queries_[2], &hits, &misses);
  EXPECT_GT(hits, 0u);
  EXPECT_EQ(misses, 0u);
}

// --- live ingest: incremental re-cleansing stays correct ---

TEST(FragmentIngestTest, InvalidationUnderLiveIngestStaysBitIdentical) {
  Database db;
  rfidgen::StreamOptions opt;
  opt.seed = 77;
  opt.num_pallets = 64;
  auto stream = rfidgen::ReadStream::Create(&db, opt);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();

  ingest::IngestPipeline pipeline(&db);
  FragmentCacheOptions copt;
  // Small regions relative to the stream volume: the scheme must end up
  // with several regions so per-epoch invalidation is visibly partial.
  copt.target_region_rows = 64;
  copt.max_regions = 8;
  FragmentCache cache(copt);
  pipeline.set_fragment_cache(&cache);

  auto feed = [&](size_t batches, size_t rows) {
    for (size_t i = 0; i < batches; ++i) {
      ASSERT_FALSE((*stream)->exhausted());
      rfidgen::StreamBatch b = (*stream)->NextBatch(rows);
      std::vector<ingest::TableBatch> group;
      group.push_back({"caseR", std::move(b.case_rows)});
      group.push_back({"palletR", std::move(b.pallet_rows)});
      group.push_back({"parent", std::move(b.parent_rows)});
      group.push_back({"epc_info", std::move(b.info_rows)});
      ASSERT_TRUE(pipeline.Apply(std::move(group)).ok());
    }
  };
  feed(6, 128);

  auto engine = MakeEngine(&db, 3);
  const std::string sql = "SELECT epc, biz_loc, rtime FROM caseR";

  size_t hits_after_ingest = 0;
  for (int round = 0; round < 4; ++round) {
    SnapshotPtr snap = pipeline.snapshot();
    size_t hits = 0, misses = 0;
    QueryResult stitched = RunStitched(&db, engine.get(), &cache, sql, &hits,
                                       &misses, snap);
    // Uncached twin at the *same* snapshot.
    ExecContext ctx;
    ctx.set_snapshot(snap);
    QueryRewriter rewriter(&db, engine.get());
    RewriteOptions ropts;
    ropts.strategy = RewriteStrategy::kNaive;
    ropts.exec_context = &ctx;
    auto info = rewriter.Rewrite(sql, ropts);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    auto uncached = ExecuteSql(db, info->sql, &ctx);
    ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();
    EXPECT_EQ(Exact(stitched.rows), Exact(uncached->rows))
        << "round " << round << " (hit=" << hits << " miss=" << misses << ")";

    if (round > 0) hits_after_ingest += hits;
    feed(1, 64);
  }
  // Live ingest mostly touches tail regions (EPCs correlate with time),
  // so fragments survive epochs and the re-cleanse is incremental. A
  // single dirty batch can occasionally span every region, so the
  // reuse requirement is cumulative rather than per round.
  EXPECT_GT(hits_after_ingest, 0u);
  auto s = cache.stats();
  EXPECT_GT(s.invalidations, 0u) << "ingest must invalidate touched regions";
  EXPECT_GT(s.hits, 0u);
}

// --- server: plan-cache / fragment-cache interplay ---

class FragmentServerTest : public ::testing::Test {
 protected:
  void StartServer() {
    server::ServerOptions options;
    auto srv = server::Server::Start(options);
    ASSERT_TRUE(srv.ok()) << srv.status().ToString();
    server_ = std::move(*srv);
  }

  std::unique_ptr<server::Client> MustConnect() {
    auto client = server::Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : nullptr;
  }

  std::unique_ptr<server::Server> server_;
};

TEST_F(FragmentServerTest, PlanCacheHitsWhileFragmentsInvalidateUnderFeed) {
  StartServer();
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Command(".gen 4 10").ok());
  for (const std::string& def : workload::StandardRuleDefinitions(3)) {
    ASSERT_TRUE(client->Command(".rule " + def).ok());
  }
  const std::string sql = "SELECT count(*) FROM caseR";

  // Warm both caches.
  auto first = client->Query(sql);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = client->Query(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->cache, server::CacheOutcome::kHit) << "plan cache";
  auto warm = server_->fragment_cache_stats();
  EXPECT_GT(warm.hits, 0u) << "fragment cache";
  EXPECT_GT(warm.inserts, 0u);

  // Live ingest: the plan cache keys on data/stats versions (a .feed
  // epoch does not bump them — rewrite decisions stay valid), while the
  // fragment cache invalidates exactly the touched regions.
  ASSERT_TRUE(client->Command(".feed 2 64").ok());
  auto third = client->Query(sql);
  ASSERT_TRUE(third.ok());
  auto after = server_->fragment_cache_stats();
  EXPECT_GT(after.invalidations, warm.invalidations)
      << "feed must invalidate touched fragments";
  EXPECT_EQ(third->rows.size(), 1u);

  // The post-feed stitched count matches an uncached run: disable the
  // fragment cache over the wire and re-run.
  ASSERT_TRUE(client->Command(".cache fragment off").ok());
  auto uncached = client->Query(sql);
  ASSERT_TRUE(uncached.ok());
  EXPECT_EQ(Exact(third->rows), Exact(uncached->rows));
  ASSERT_TRUE(client->Command(".cache fragment on").ok());

  // .cache stats reports both caches.
  auto stats = client->Command(".cache stats");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("plan cache:"), std::string::npos);
  EXPECT_NE(stats->find("fragment cache:"), std::string::npos);
  EXPECT_NE(stats->find("resident bytes"), std::string::npos);
}

TEST_F(FragmentServerTest, ExplainCarriesFragmentHeaderAndRegionDetail) {
  StartServer();
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Command(".gen 4 10").ok());
  for (const std::string& def : workload::StandardRuleDefinitions(3)) {
    ASSERT_TRUE(client->Command(".rule " + def).ok());
  }
  ASSERT_TRUE(client->Set("explain", "on").ok());
  const std::string sql = "SELECT count(*) FROM caseR";

  auto cold = client->Query(sql);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_NE(cold->explain.find("fragments: hit=0"), std::string::npos)
      << cold->explain;
  auto warm = client->Query(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_NE(warm->explain.find("fragments: hit="), std::string::npos);
  EXPECT_NE(warm->explain.find("miss=0"), std::string::npos) << warm->explain;
  // Verbose mode: per-region hit/miss lines.
  ASSERT_TRUE(client->Set("candidates", "on").ok());
  auto verbose = client->Query(sql);
  ASSERT_TRUE(verbose.ok());
  EXPECT_NE(verbose->explain.find("region 0"), std::string::npos)
      << verbose->explain;

  // The rewrite note stays deterministic (plan-cache reuse is keyed on
  // it); fragment counters live in the EXPLAIN header only.
  EXPECT_EQ(cold->rewrite_note.find("fragments"), std::string::npos);
  EXPECT_EQ(cold->rewrite_note, warm->rewrite_note);
}

TEST_F(FragmentServerTest, SessionsWithIdenticalCatalogsShareFragments) {
  StartServer();
  auto a = MustConnect();
  auto b = MustConnect();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(a->Command(".gen 4 10").ok());
  for (const std::string& def : workload::StandardRuleDefinitions(3)) {
    ASSERT_TRUE(a->Command(".rule " + def).ok());
    ASSERT_TRUE(b->Command(".rule " + def).ok());
  }
  const std::string sql = "SELECT count(*) FROM caseR";
  auto ra = a->Query(sql);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  auto before = server_->fragment_cache_stats();
  auto rb = b->Query(sql);
  ASSERT_TRUE(rb.ok());
  auto after = server_->fragment_cache_stats();
  EXPECT_EQ(Exact(ra->rows), Exact(rb->rows));
  EXPECT_GT(after.hits, before.hits)
      << "session b must reuse session a's fragments";
  EXPECT_EQ(after.inserts, before.inserts)
      << "session b must not re-cleanse anything";
}

}  // namespace
}  // namespace rfid
