// Tests for selectivity estimation and the cost model's decision-relevant
// orderings (the rewrite engine only needs relative cost to be sane).
#include <gtest/gtest.h>

#include "common/time_util.h"
#include "plan/cost_model.h"
#include "plan/planner.h"
#include "sql/parser.h"

namespace rfid {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s;
    s.AddColumn("epc", DataType::kString);
    s.AddColumn("rtime", DataType::kTimestamp);
    s.AddColumn("reader", DataType::kString);
    table_ = db_.CreateTable("caseR", s).value();
    // 100 rows: rtime 0..99 minutes, 10 epcs, 4 readers.
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(table_
                      ->Append({Value::String("e" + std::to_string(i % 10)),
                                Value::Timestamp(Minutes(i)),
                                Value::String("r" + std::to_string(i % 4))})
                      .ok());
    }
    ASSERT_TRUE(table_->BuildIndex("rtime").ok());
    table_->ComputeStats();
  }

  ExprPtr Expr(const std::string& text) {
    auto e = ParseExpression(text);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return e.value();
  }

  Database db_;
  Table* table_ = nullptr;
};

TEST_F(CostModelTest, EqualityUsesNdv) {
  EXPECT_NEAR(EstimateConjunctSelectivity(Expr("epc = 'e1'"), table_), 0.1, 1e-9);
  EXPECT_NEAR(EstimateConjunctSelectivity(Expr("reader = 'r0'"), table_), 0.25,
              1e-9);
}

TEST_F(CostModelTest, RangeUsesMinMax) {
  // rtime spans [0, 99] minutes; <= 49 min is about half.
  std::string pred =
      "rtime <= TIMESTAMP " + std::to_string(Minutes(49));
  double sel = EstimateConjunctSelectivity(Expr(pred), table_);
  EXPECT_GT(sel, 0.40);
  EXPECT_LT(sel, 0.60);
  // Out-of-range constants clamp to [0, 1].
  EXPECT_NEAR(EstimateConjunctSelectivity(
                  Expr("rtime <= TIMESTAMP " + std::to_string(-Minutes(5))),
                  table_),
              0.0, 1e-9);
  EXPECT_NEAR(EstimateConjunctSelectivity(
                  Expr("rtime >= TIMESTAMP " + std::to_string(-Minutes(5))),
                  table_),
              1.0, 1e-9);
}

TEST_F(CostModelTest, BooleanCombinators) {
  double half = EstimateConjunctSelectivity(
      Expr("rtime <= TIMESTAMP " + std::to_string(Minutes(49))), table_);
  double eq = EstimateConjunctSelectivity(Expr("epc = 'e1'"), table_);
  double both = EstimateConjunctSelectivity(
      Expr("rtime <= TIMESTAMP " + std::to_string(Minutes(49)) +
           " AND epc = 'e1'"),
      table_);
  EXPECT_NEAR(both, half * eq, 1e-9);
  double either = EstimateConjunctSelectivity(
      Expr("rtime <= TIMESTAMP " + std::to_string(Minutes(49)) +
           " OR epc = 'e1'"),
      table_);
  EXPECT_NEAR(either, half + eq - half * eq, 1e-9);
  double negated = EstimateConjunctSelectivity(Expr("NOT epc = 'e1'"), table_);
  EXPECT_NEAR(negated, 1.0 - eq, 1e-9);
}

TEST_F(CostModelTest, InListScalesWithItems) {
  double one = EstimateConjunctSelectivity(Expr("epc IN ('e1')"), table_);
  double three =
      EstimateConjunctSelectivity(Expr("epc IN ('e1', 'e2', 'e3')"), table_);
  EXPECT_NEAR(one, 0.1, 1e-9);
  EXPECT_NEAR(three, 0.3, 1e-9);
}

TEST_F(CostModelTest, NullFractionFromStats) {
  Schema s;
  s.AddColumn("x", DataType::kInt64);
  Table* t = db_.CreateTable("nulls", s).value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t->Append({i < 3 ? Value::Null() : Value::Int64(i)}).ok());
  }
  t->ComputeStats();
  EXPECT_NEAR(EstimateConjunctSelectivity(Expr("x IS NULL"), t), 0.3, 1e-9);
  EXPECT_NEAR(EstimateConjunctSelectivity(Expr("x IS NOT NULL"), t), 0.7, 1e-9);
}

TEST_F(CostModelTest, DefaultsWithoutStats) {
  EXPECT_NEAR(EstimateConjunctSelectivity(Expr("epc = 'x'"), nullptr),
              kDefaultEqSelectivity, 1e-9);
  EXPECT_NEAR(EstimateConjunctSelectivity(
                  Expr("rtime < TIMESTAMP " + std::to_string(Minutes(1))),
                  nullptr),
              kDefaultRangeSelectivity, 1e-9);
}

TEST_F(CostModelTest, SortCostSuperlinear) {
  EXPECT_GT(SortCost(20000) / 2, SortCost(10000));
  EXPECT_LE(SortCost(1), 1.0);
}

TEST_F(CostModelTest, PlanCostsOrderRewriteChoicesSensibly) {
  // Narrow index-friendly predicate beats a full scan which beats a sort
  // of everything.
  auto narrow = PlanSql(db_, "SELECT * FROM caseR WHERE rtime <= TIMESTAMP " +
                                 std::to_string(Minutes(5)));
  auto scan = PlanSql(db_, "SELECT * FROM caseR");
  auto sorted = PlanSql(db_, "SELECT * FROM caseR ORDER BY epc");
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(sorted.ok());
  EXPECT_LT(narrow->estimated_cost, scan->estimated_cost);
  EXPECT_LT(scan->estimated_cost, sorted->estimated_cost);
}

TEST_F(CostModelTest, ColumnNdvFallback) {
  EXPECT_NEAR(ColumnNdv(table_, "epc", 7.0), 10.0, 1e-9);
  EXPECT_NEAR(ColumnNdv(table_, "nope", 7.0), 7.0, 1e-9);
  EXPECT_NEAR(ColumnNdv(nullptr, "epc", 7.0), 7.0, 1e-9);
}

}  // namespace
}  // namespace rfid
