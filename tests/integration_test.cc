// End-to-end integration tests: generated supply-chain data with injected
// anomalies, the paper's five rules, the Figure 6 queries, and all three
// rewrite strategies — expanded and join-back answers must equal naive
// cleansing (Q[C] correctness), and dirty answers must differ.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/string_util.h"
#include "plan/planner.h"
#include "rewrite/rewriter.h"
#include "rfidgen/anomaly.h"
#include "rfidgen/workload.h"

namespace rfid {
namespace {

std::vector<std::string> Canonical(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  for (const Row& r : rows) {
    std::string s;
    for (const Value& v : r) s += v.ToString() + "|";
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rfidgen::GeneratorOptions gen;
    gen.num_pallets = 8;
    gen.min_cases_per_pallet = 3;
    gen.max_cases_per_pallet = 6;
    gen.reads_per_site = 5;
    gen.num_stores = 30;
    gen.num_warehouses = 10;
    gen.num_dcs = 5;
    gen.locations_per_site = 10;
    auto g = rfidgen::Generate(gen, &db_);
    ASSERT_TRUE(g.ok()) << g.status().ToString();

    rfidgen::AnomalyOptions anomalies;
    anomalies.dirty_fraction = 0.15;
    auto a = rfidgen::InjectAnomalies(anomalies, &db_);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    anomaly_stats_ = a.value();

    engine_ = std::make_unique<CleansingRuleEngine>(&db_);
    rewriter_ = std::make_unique<QueryRewriter>(&db_, engine_.get());
  }

  void DefineRules(int count) {
    for (const std::string& def : workload::StandardRuleDefinitions(count)) {
      Status st = engine_->DefineRule(def);
      ASSERT_TRUE(st.ok()) << st.ToString() << "\n" << def;
    }
  }

  QueryResult Run(const std::string& sql) {
    auto res = ExecuteSql(db_, sql);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.ok() ? std::move(res).value() : QueryResult{};
  }

  RewriteInfo MustRewrite(const std::string& sql, RewriteStrategy strategy) {
    RewriteOptions opts;
    opts.strategy = strategy;
    auto r = rewriter_->Rewrite(sql, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : RewriteInfo{};
  }

  void ExpectAllStrategiesAgree(const std::string& sql, bool expanded_feasible) {
    RewriteInfo naive = MustRewrite(sql, RewriteStrategy::kNaive);
    QueryResult truth = Run(naive.sql);
    RewriteInfo jb = MustRewrite(sql, RewriteStrategy::kJoinBack);
    QueryResult jb_res = Run(jb.sql);
    EXPECT_EQ(Canonical(truth.rows), Canonical(jb_res.rows)) << "join-back";
    if (expanded_feasible) {
      RewriteInfo ex = MustRewrite(sql, RewriteStrategy::kExpanded);
      QueryResult ex_res = Run(ex.sql);
      EXPECT_EQ(Canonical(truth.rows), Canonical(ex_res.rows)) << "expanded";
    } else {
      RewriteOptions opts;
      opts.strategy = RewriteStrategy::kExpanded;
      EXPECT_FALSE(rewriter_->Rewrite(sql, opts).ok());
    }
  }

  Database db_;
  rfidgen::AnomalyStats anomaly_stats_;
  std::unique_ptr<CleansingRuleEngine> engine_;
  std::unique_ptr<QueryRewriter> rewriter_;
};

TEST_F(IntegrationTest, Q1AllStrategiesAgreeThreeRules) {
  DefineRules(3);
  std::string q1 = workload::Q1(workload::T1ForSelectivity(db_, 0.5));
  ExpectAllStrategiesAgree(q1, /*expanded_feasible=*/true);
}

TEST_F(IntegrationTest, Q1CycleRuleKillsExpanded) {
  DefineRules(4);
  std::string q1 = workload::Q1(workload::T1ForSelectivity(db_, 0.5));
  ExpectAllStrategiesAgree(q1, /*expanded_feasible=*/false);
}

TEST_F(IntegrationTest, Q1AllFiveRules) {
  DefineRules(5);
  std::string q1 = workload::Q1(workload::T1ForSelectivity(db_, 0.5));
  ExpectAllStrategiesAgree(q1, /*expanded_feasible=*/false);
}

TEST_F(IntegrationTest, Q2AllStrategiesAgreeThreeRules) {
  DefineRules(3);
  std::string q2 = workload::Q2(workload::T2ForSelectivity(db_, 0.5), "dc2");
  ExpectAllStrategiesAgree(q2, /*expanded_feasible=*/true);
}

TEST_F(IntegrationTest, Q2AllFiveRules) {
  DefineRules(5);
  std::string q2 = workload::Q2(workload::T2ForSelectivity(db_, 0.5), "dc2");
  ExpectAllStrategiesAgree(q2, /*expanded_feasible=*/false);
}

TEST_F(IntegrationTest, Q2PrimeAgrees) {
  DefineRules(1);
  std::string q = workload::Q2Prime(workload::T2ForSelectivity(db_, 0.4), 3);
  ExpectAllStrategiesAgree(q, /*expanded_feasible=*/true);
}

TEST_F(IntegrationTest, DirtyAnswersDifferFromCleansed) {
  DefineRules(2);
  std::string sql = StrFormat(
      "SELECT count(*) FROM caseR WHERE rtime <= TIMESTAMP %lld",
      static_cast<long long>(workload::T1ForSelectivity(db_, 1.0)));
  QueryResult dirty = Run(sql);
  RewriteInfo naive = MustRewrite(sql, RewriteStrategy::kNaive);
  QueryResult clean = Run(naive.sql);
  ASSERT_EQ(dirty.rows.size(), 1u);
  ASSERT_EQ(clean.rows.size(), 1u);
  EXPECT_GT(dirty.rows[0][0].int64_value(), clean.rows[0][0].int64_value());
}

TEST_F(IntegrationTest, Table1FeasibilityShape) {
  // Expanded conditions per rule for q1 and q2 (Table 1): reader,
  // duplicate, replacing are derivable for both queries; cycle for
  // neither; missing only for q2.
  DefineRules(5);
  std::string q1 = workload::Q1(workload::T1ForSelectivity(db_, 0.1));
  std::string q2 = workload::Q2(workload::T2ForSelectivity(db_, 0.1), "dc2");

  auto feasibility = [&](const std::string& sql) {
    RewriteInfo info = MustRewrite(sql, RewriteStrategy::kAuto);
    std::map<std::string, bool> by_rule;
    for (const RuleContextInfo& c : info.contexts) {
      // missing_r1/missing_r2 both belong to the "missing" rule group.
      std::string group = c.rule_name.substr(0, c.rule_name.find("_r"));
      auto [it, inserted] = by_rule.try_emplace(group, c.feasible);
      it->second = it->second && c.feasible;
    }
    return by_rule;
  };

  auto q1f = feasibility(q1);
  EXPECT_TRUE(q1f.at("reader"));
  EXPECT_TRUE(q1f.at("duplicate"));
  EXPECT_TRUE(q1f.at("replacing"));
  EXPECT_FALSE(q1f.at("cycle"));
  EXPECT_FALSE(q1f.at("missing"));

  auto q2f = feasibility(q2);
  EXPECT_TRUE(q2f.at("reader"));
  EXPECT_TRUE(q2f.at("duplicate"));
  EXPECT_TRUE(q2f.at("replacing"));
  EXPECT_FALSE(q2f.at("cycle"));
  EXPECT_TRUE(q2f.at("missing"));
}

TEST_F(IntegrationTest, MissingRuleCompensatesInQueries) {
  // With all five rules, cleansed q-counts include compensating pallet
  // reads for removed case reads.
  DefineRules(5);
  std::string sql = StrFormat(
      "SELECT count(*) FROM caseR WHERE rtime <= TIMESTAMP %lld",
      static_cast<long long>(workload::T1ForSelectivity(db_, 1.0)));
  RewriteInfo naive = MustRewrite(sql, RewriteStrategy::kNaive);
  QueryResult clean = Run(naive.sql);
  ASSERT_EQ(clean.rows.size(), 1u);
  // All injected delete-type anomalies removed; missing reads compensated.
  // clean count = original clean reads (duplicates/reader/cycle reads
  // removed, missing reads replaced by pallet rows, LOC2 modified rows
  // kept, the extra LOCA reads from replacing injection remain).
  QueryResult dirty = Run(sql);
  int64_t removed = anomaly_stats_.duplicates + anomaly_stats_.reader +
                    anomaly_stats_.cycles;
  EXPECT_EQ(clean.rows[0][0].int64_value(),
            dirty.rows[0][0].int64_value() - removed + anomaly_stats_.missing);
}

}  // namespace
}  // namespace rfid
