// WAL segment format tests: round-tripping epochs through the writer and
// reader, the paranoid-reader guarantees (torn tail, flipped CRC, garbage
// bytes, truncated records — all land on the last COMMIT boundary), the
// abort/commit epoch bookkeeping, fsync policies, and the broken-writer
// contract after an injected I/O failure.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/io.h"
#include "wal/wal.h"

namespace rfid {
namespace {

using wal::FsyncPolicy;
using wal::ReadWal;
using wal::WalReadResult;
using wal::WalWriter;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/rfid_wal_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".log";
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string ReadRaw() {
    auto s = ReadFileToString(path_);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    return s.ok() ? *s : std::string();
  }

  void WriteRaw(const std::string& bytes) {
    FILE* f = fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    fclose(f);
  }

  std::string path_;
};

TEST_F(WalTest, RoundTripsEpochsInOrder) {
  auto writer = WalWriter::Create(path_, FsyncPolicy::kPerEpoch, 1);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)->AppendBatch("caseR", {"1\ta", "2\tb"}).ok());
  ASSERT_TRUE((*writer)->AppendBatch("palletR", {"3\tc"}).ok());
  ASSERT_TRUE((*writer)->Commit().ok());
  ASSERT_TRUE((*writer)->AppendBatch("caseR", {"4\td"}).ok());
  ASSERT_TRUE((*writer)->Commit().ok());
  EXPECT_EQ((*writer)->last_committed(), 2u);
  EXPECT_EQ((*writer)->epoch(), 3u);

  auto log = ReadWal(path_);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  ASSERT_EQ(log->committed.size(), 2u);
  EXPECT_EQ(log->committed[0].epoch, 1u);
  ASSERT_EQ(log->committed[0].batches.size(), 2u);
  EXPECT_EQ(log->committed[0].batches[0].table, "caseR");
  EXPECT_EQ(log->committed[0].batches[0].row_lines,
            (std::vector<std::string>{"1\ta", "2\tb"}));
  EXPECT_EQ(log->committed[0].batches[1].table, "palletR");
  EXPECT_EQ(log->committed[1].epoch, 2u);
  ASSERT_EQ(log->committed[1].batches.size(), 1u);
  EXPECT_EQ(log->committed[1].batches[0].row_lines,
            (std::vector<std::string>{"4\td"}));
  // The whole file is committed prefix: nothing to truncate.
  EXPECT_EQ(log->committed_bytes, (*writer)->offset());
  EXPECT_EQ(log->tail_bytes, 0u);
  EXPECT_FALSE(log->tail_corrupt);
}

TEST_F(WalTest, EmptySegmentAndMissingFile) {
  EXPECT_EQ(ReadWal(path_).status().code(), StatusCode::kNotFound);

  auto writer = WalWriter::Create(path_, FsyncPolicy::kOff, 1);
  ASSERT_TRUE(writer.ok());
  auto log = ReadWal(path_);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log->committed.empty());
  EXPECT_EQ(log->tail_bytes, 0u);
  EXPECT_FALSE(log->tail_corrupt);

  // A file too short for the magic is corrupt, not silently empty.
  WriteRaw("RFID");
  EXPECT_EQ(ReadWal(path_).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WalTest, UncommittedBatchesAreTailNotCorruption) {
  auto writer = WalWriter::Create(path_, FsyncPolicy::kPerEpoch, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendBatch("caseR", {"1\ta"}).ok());
  ASSERT_TRUE((*writer)->Commit().ok());
  uint64_t committed_end = (*writer)->offset();
  // Epoch 2 never commits: a crash between BATCH and COMMIT.
  ASSERT_TRUE((*writer)->AppendBatch("caseR", {"2\tb"}).ok());

  auto log = ReadWal(path_);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->committed.size(), 1u);
  EXPECT_EQ(log->committed_bytes, committed_end);
  EXPECT_GT(log->tail_bytes, 0u);
  EXPECT_FALSE(log->tail_corrupt) << "well-formed records, just uncommitted";
}

TEST_F(WalTest, TornRecordTruncatesToLastCommit) {
  auto writer = WalWriter::Create(path_, FsyncPolicy::kPerEpoch, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendBatch("caseR", {"1\ta"}).ok());
  ASSERT_TRUE((*writer)->Commit().ok());
  uint64_t committed_end = (*writer)->offset();
  ASSERT_TRUE((*writer)->AppendBatch("caseR", {"2\tb", "3\tc"}).ok());
  ASSERT_TRUE((*writer)->Commit().ok());

  // Tear the final COMMIT record in half: epoch 2 must vanish.
  std::string bytes = ReadRaw();
  uint64_t torn = committed_end + (bytes.size() - committed_end) / 2;
  ASSERT_TRUE(TruncateFile(path_, torn).ok());

  auto log = ReadWal(path_);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->committed.size(), 1u);
  EXPECT_EQ(log->committed[0].epoch, 1u);
  EXPECT_EQ(log->committed_bytes, committed_end);
  EXPECT_EQ(log->tail_bytes, torn - committed_end);
  EXPECT_TRUE(log->tail_corrupt);
}

TEST_F(WalTest, FlippedBitNeverServesTheDamagedEpoch) {
  auto writer = WalWriter::Create(path_, FsyncPolicy::kPerEpoch, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendBatch("caseR", {"1\ta"}).ok());
  ASSERT_TRUE((*writer)->Commit().ok());
  uint64_t committed_end = (*writer)->offset();
  ASSERT_TRUE((*writer)->AppendBatch("caseR", {"2\tb"}).ok());
  ASSERT_TRUE((*writer)->Commit().ok());

  std::string bytes = ReadRaw();
  // Flip one payload bit in every position of epoch 2's bytes in turn:
  // the CRC must catch each one and replay must stop at epoch 1.
  for (uint64_t pos = committed_end + 8; pos < bytes.size(); pos += 7) {
    std::string damaged = bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x10);
    WriteRaw(damaged);
    auto log = ReadWal(path_);
    ASSERT_TRUE(log.ok());
    ASSERT_EQ(log->committed.size(), 1u) << "flip at byte " << pos;
    EXPECT_EQ(log->committed[0].epoch, 1u);
    EXPECT_EQ(log->committed_bytes, committed_end);
    EXPECT_TRUE(log->tail_corrupt) << "flip at byte " << pos;
  }

  // Damage *inside* the committed prefix: epoch 1 itself must be refused
  // (bit rot cannot skip ahead to epoch 2 either — scan stops).
  std::string damaged = bytes;
  damaged[10] = static_cast<char>(damaged[10] ^ 0x01);
  WriteRaw(damaged);
  auto log = ReadWal(path_);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log->committed.empty());
  EXPECT_EQ(log->committed_bytes, 8u);  // just the magic
  EXPECT_TRUE(log->tail_corrupt);
}

TEST_F(WalTest, GarbageTailAfterCommitsIsTruncated) {
  auto writer = WalWriter::Create(path_, FsyncPolicy::kPerEpoch, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendBatch("caseR", {"1\ta"}).ok());
  ASSERT_TRUE((*writer)->Commit().ok());
  uint64_t committed_end = (*writer)->offset();

  std::string bytes = ReadRaw();
  bytes += "\xde\xad\xbe\xef garbage that is not a record";
  WriteRaw(bytes);

  auto log = ReadWal(path_);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->committed.size(), 1u);
  EXPECT_EQ(log->committed_bytes, committed_end);
  EXPECT_EQ(log->tail_bytes, bytes.size() - committed_end);
  EXPECT_TRUE(log->tail_corrupt);
}

TEST_F(WalTest, AbortDiscardsTheEpochAndDisambiguatesTheNext) {
  auto writer = WalWriter::Create(path_, FsyncPolicy::kPerEpoch, 1);
  ASSERT_TRUE(writer.ok());
  // Epoch 1 aborts after logging a batch; its records sit in the file
  // with no COMMIT. Epoch 2 commits with different rows.
  ASSERT_TRUE((*writer)->AppendBatch("caseR", {"doomed\trow"}).ok());
  (*writer)->Abort();
  EXPECT_EQ((*writer)->epoch(), 2u);
  ASSERT_TRUE((*writer)->AppendBatch("caseR", {"kept\trow"}).ok());
  ASSERT_TRUE((*writer)->Commit().ok());
  // An epoch that aborts before logging anything, then an empty commit.
  (*writer)->Abort();
  ASSERT_TRUE((*writer)->Commit().ok());

  auto log = ReadWal(path_);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->committed.size(), 2u);
  EXPECT_EQ(log->committed[0].epoch, 2u);
  ASSERT_EQ(log->committed[0].batches.size(), 1u);
  EXPECT_EQ(log->committed[0].batches[0].row_lines,
            (std::vector<std::string>{"kept\trow"}));
  EXPECT_TRUE(log->committed[1].batches.empty());
  EXPECT_FALSE(log->tail_corrupt);
  EXPECT_EQ(log->tail_bytes, 0u);
}

TEST_F(WalTest, OpenAppendTruncatesTheTailAndContinues) {
  uint64_t committed_end = 0;
  {
    auto writer = WalWriter::Create(path_, FsyncPolicy::kPerEpoch, 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendBatch("caseR", {"1\ta"}).ok());
    ASSERT_TRUE((*writer)->Commit().ok());
    committed_end = (*writer)->offset();
    // Crash artifact: an uncommitted batch from epoch 2.
    ASSERT_TRUE((*writer)->AppendBatch("caseR", {"lost\trow"}).ok());
  }

  auto log = ReadWal(path_);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->committed_bytes, committed_end);

  auto reopened = WalWriter::OpenAppend(path_, FsyncPolicy::kPerEpoch,
                                        /*next_epoch=*/2, committed_end);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->offset(), committed_end);
  ASSERT_TRUE((*reopened)->AppendBatch("caseR", {"2\tb"}).ok());
  ASSERT_TRUE((*reopened)->Commit().ok());

  auto relog = ReadWal(path_);
  ASSERT_TRUE(relog.ok());
  ASSERT_EQ(relog->committed.size(), 2u);
  EXPECT_EQ(relog->committed[1].epoch, 2u);
  EXPECT_EQ(relog->committed[1].batches[0].row_lines,
            (std::vector<std::string>{"2\tb"}));
  EXPECT_FALSE(relog->tail_corrupt);
}

TEST_F(WalTest, AllFsyncPoliciesProduceTheSameBytes) {
  for (FsyncPolicy policy :
       {FsyncPolicy::kAlways, FsyncPolicy::kPerEpoch, FsyncPolicy::kOff}) {
    std::filesystem::remove(path_);
    auto writer = WalWriter::Create(path_, policy, 1);
    ASSERT_TRUE(writer.ok()) << wal::FsyncPolicyName(policy);
    ASSERT_TRUE((*writer)->AppendBatch("caseR", {"1\ta", "2\tb"}).ok());
    ASSERT_TRUE((*writer)->Commit().ok());
    auto log = ReadWal(path_);
    ASSERT_TRUE(log.ok()) << wal::FsyncPolicyName(policy);
    ASSERT_EQ(log->committed.size(), 1u);
    EXPECT_EQ(log->committed[0].batches[0].row_lines.size(), 2u);
  }
}

TEST_F(WalTest, InjectedWriteFailureBreaksTheWriterPermanently) {
  auto writer = WalWriter::Create(path_, FsyncPolicy::kPerEpoch, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendBatch("caseR", {"1\ta"}).ok());
  ASSERT_TRUE((*writer)->Commit().ok());
  uint64_t committed_end = (*writer)->offset();

  {
    // The short-write site leaves a torn record behind — exactly the
    // artifact the reader must refuse.
    FaultInjector injector = FaultInjector::FailAtStep(1);
    ScopedFaultInjector scope(&injector);
    Status st = (*writer)->AppendBatch("caseR", {"2\tb"});
    ASSERT_FALSE(st.ok());
    ASSERT_TRUE(injector.fired());
  }
  EXPECT_TRUE((*writer)->broken());
  // Broken stays broken, even with no injector installed.
  EXPECT_FALSE((*writer)->AppendBatch("caseR", {"3\tc"}).ok());
  EXPECT_FALSE((*writer)->Commit().ok());

  auto log = ReadWal(path_);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->committed.size(), 1u);
  EXPECT_EQ(log->committed_bytes, committed_end);
}

}  // namespace
}  // namespace rfid
