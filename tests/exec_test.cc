// Unit tests for the physical operators, including the SQL/OLAP window
// operator that cleansing rules compile into.
#include <gtest/gtest.h>

#include "common/time_util.h"
#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/hash_join.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "exec/union_all.h"
#include "exec/window.h"
#include "storage/catalog.h"

namespace rfid {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema reads;
    reads.AddColumn("epc", DataType::kString);
    reads.AddColumn("rtime", DataType::kTimestamp);
    reads.AddColumn("biz_loc", DataType::kString);
    auto t = db_.CreateTable("reads", reads);
    ASSERT_TRUE(t.ok());
    reads_ = t.value();
    // Two EPC sequences; e1 has a duplicate location pair.
    AddRead("e1", 0, "locA");
    AddRead("e1", Minutes(2), "locA");   // duplicate of previous
    AddRead("e1", Minutes(60), "locB");
    AddRead("e2", Minutes(5), "locA");
    AddRead("e2", Minutes(70), "locC");
    ASSERT_TRUE(reads_->BuildIndex("rtime").ok());

    Schema locs;
    locs.AddColumn("gln", DataType::kString);
    locs.AddColumn("site", DataType::kString);
    auto l = db_.CreateTable("locs", locs);
    ASSERT_TRUE(l.ok());
    locs_ = l.value();
    ASSERT_TRUE(locs_->Append({Value::String("locA"), Value::String("dc1")}).ok());
    ASSERT_TRUE(locs_->Append({Value::String("locB"), Value::String("store1")}).ok());
    // locC intentionally missing (tests inner-join drop).
  }

  void AddRead(const std::string& epc, int64_t rtime, const std::string& loc) {
    ASSERT_TRUE(reads_
                    ->Append({Value::String(epc), Value::Timestamp(rtime),
                              Value::String(loc)})
                    .ok());
  }

  // Binds e against op's output.
  ExprPtr Bind(const ExprPtr& e, const Operator& op) {
    auto r = BindExpr(e, op.output_desc());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.value() : nullptr;
  }

  Database db_;
  Table* reads_ = nullptr;
  Table* locs_ = nullptr;
};

TEST_F(ExecTest, TableScanProducesAllRows) {
  TableScanOp scan(reads_, "r");
  auto rows = CollectRows(&scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);
  EXPECT_EQ(scan.output_desc().num_fields(), 3u);
  EXPECT_EQ(scan.output_desc().field(0).qualifier, "r");
}

TEST_F(ExecTest, IndexRangeScanHonorsBoundsAndOrder) {
  IndexRangeScanOp scan(reads_, reads_->GetIndex("rtime"), "r",
                        Bound{Value::Timestamp(Minutes(2)), true},
                        Bound{Value::Timestamp(Minutes(60)), true});
  auto rows = CollectRows(&scan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);  // minutes 2, 5, 60
  EXPECT_EQ((*rows)[0][1].timestamp_value(), Minutes(2));
  EXPECT_EQ((*rows)[2][1].timestamp_value(), Minutes(60));
}

TEST_F(ExecTest, FilterKeepsOnlyTrueRows) {
  auto scan = std::make_unique<TableScanOp>(reads_, "r");
  ExprPtr pred = Bind(MakeBinary(BinaryOp::kEq, MakeColumnRef("r", "biz_loc"),
                                 MakeLiteral(Value::String("locA"))),
                      *scan);
  FilterOp filter(std::move(scan), pred);
  auto rows = CollectRows(&filter);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(ExecTest, ProjectComputesExpressions) {
  auto scan = std::make_unique<TableScanOp>(reads_, "r");
  ExprPtr epc = Bind(MakeColumnRef("r", "epc"), *scan);
  ExprPtr shifted =
      Bind(MakeBinary(BinaryOp::kAdd, MakeColumnRef("r", "rtime"),
                      MakeLiteral(Value::Interval(Minutes(1)))),
           *scan);
  RowDesc out;
  out.AddField("", "epc", DataType::kString);
  out.AddField("", "shifted", DataType::kTimestamp);
  ProjectOp proj(std::move(scan), {epc, shifted}, out);
  auto rows = CollectRows(&proj);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 5u);
  EXPECT_EQ((*rows)[0].size(), 2u);
  EXPECT_EQ((*rows)[0][1].timestamp_value(), Minutes(1));
}

TEST_F(ExecTest, SortOrdersByKeys) {
  auto scan = std::make_unique<TableScanOp>(reads_, "r");
  SortOp sort(std::move(scan), {{0, true}, {1, false}});  // epc asc, rtime desc
  auto rows = CollectRows(&sort);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 5u);
  EXPECT_EQ((*rows)[0][0].string_value(), "e1");
  EXPECT_EQ((*rows)[0][1].timestamp_value(), Minutes(60));  // e1 newest first
  EXPECT_EQ((*rows)[4][0].string_value(), "e2");
  EXPECT_EQ(sort.rows_sorted(), 5u);
}

TEST_F(ExecTest, SortPutsNullsFirst) {
  AddRead("e0", 0, "x");
  (void)reads_->num_rows();  // silence unused warnings in some configs
  // Make the new row's epc NULL via a direct append.
  Table* t = db_.GetTable("reads");
  ASSERT_TRUE(t->Append({Value::Null(), Value::Timestamp(1), Value::String("y")}).ok());
  auto scan = std::make_unique<TableScanOp>(t, "r");
  SortOp sort(std::move(scan), {{0, true}});
  auto rows = CollectRows(&sort);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE((*rows)[0][0].is_null());
}

TEST_F(ExecTest, HashJoinInnerPreservesProbeOrder) {
  auto probe = std::make_unique<TableScanOp>(reads_, "r");
  auto build = std::make_unique<TableScanOp>(locs_, "l");
  // r.biz_loc = l.gln
  HashJoinOp join(std::move(probe), std::move(build), {2}, {0}, JoinType::kInner);
  auto rows = CollectRows(&join);
  ASSERT_TRUE(rows.ok());
  // locC read drops out: 4 matches.
  ASSERT_EQ(rows->size(), 4u);
  EXPECT_EQ((*rows)[0].size(), 5u);  // 3 probe + 2 build columns
  // Probe order preserved: rows appear in reads-table order.
  EXPECT_EQ((*rows)[0][0].string_value(), "e1");
  EXPECT_EQ((*rows)[3][0].string_value(), "e2");
  EXPECT_EQ((*rows)[3][4].string_value(), "dc1");
}

TEST_F(ExecTest, HashSemiJoinEmitsProbeOnceAndProbeColumnsOnly) {
  // Build side with duplicate keys must not duplicate probe rows.
  ASSERT_TRUE(locs_->Append({Value::String("locA"), Value::String("dc2")}).ok());
  auto probe = std::make_unique<TableScanOp>(reads_, "r");
  auto build = std::make_unique<TableScanOp>(locs_, "l");
  HashJoinOp join(std::move(probe), std::move(build), {2}, {0},
                  JoinType::kLeftSemi);
  auto rows = CollectRows(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);       // locA x3 + locB x1
  EXPECT_EQ((*rows)[0].size(), 3u);  // probe columns only
}

TEST_F(ExecTest, HashJoinNullKeysNeverMatch) {
  Table* t = db_.GetTable("reads");
  ASSERT_TRUE(t->Append({Value::String("e9"), Value::Timestamp(2), Value::Null()}).ok());
  auto probe = std::make_unique<TableScanOp>(t, "r");
  auto build = std::make_unique<TableScanOp>(locs_, "l");
  HashJoinOp join(std::move(probe), std::move(build), {2}, {0}, JoinType::kInner);
  auto rows = CollectRows(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);  // NULL biz_loc row does not join
}

TEST_F(ExecTest, HashAggregateGroupsAndAggregates) {
  auto scan = std::make_unique<TableScanOp>(reads_, "r");
  ExprPtr group = Bind(MakeColumnRef("r", "epc"), *scan);
  AggSpec count_star{AggFunc::kCount, nullptr, false, DataType::kInt64};
  AggSpec max_time{AggFunc::kMax, Bind(MakeColumnRef("r", "rtime"), *scan), false,
                   DataType::kTimestamp};
  RowDesc out;
  out.AddField("", "epc", DataType::kString);
  out.AddField("", "n", DataType::kInt64);
  out.AddField("", "max_rtime", DataType::kTimestamp);
  HashAggregateOp agg(std::move(scan), {group}, {count_star, max_time}, out);
  auto rows = CollectRows(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  // First-seen group order: e1 then e2.
  EXPECT_EQ((*rows)[0][0].string_value(), "e1");
  EXPECT_EQ((*rows)[0][1].int64_value(), 3);
  EXPECT_EQ((*rows)[0][2].timestamp_value(), Minutes(60));
  EXPECT_EQ((*rows)[1][1].int64_value(), 2);
}

TEST_F(ExecTest, HashAggregateCountDistinct) {
  auto scan = std::make_unique<TableScanOp>(reads_, "r");
  AggSpec distinct_locs{AggFunc::kCount, Bind(MakeColumnRef("r", "biz_loc"), *scan),
                        true, DataType::kInt64};
  RowDesc out;
  out.AddField("", "n", DataType::kInt64);
  HashAggregateOp agg(std::move(scan), {}, {distinct_locs}, out);
  auto rows = CollectRows(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].int64_value(), 3);  // locA, locB, locC
}

TEST_F(ExecTest, GlobalAggregateOnEmptyInputEmitsOneRow) {
  auto scan = std::make_unique<TableScanOp>(reads_, "r");
  ExprPtr never = Bind(MakeBinary(BinaryOp::kEq, MakeColumnRef("r", "epc"),
                                  MakeLiteral(Value::String("zzz"))),
                       *scan);
  auto filter = std::make_unique<FilterOp>(std::move(scan), never);
  AggSpec count_star{AggFunc::kCount, nullptr, false, DataType::kInt64};
  AggSpec max_time{AggFunc::kMax, Bind(MakeColumnRef("r", "rtime"), *filter), false,
                   DataType::kTimestamp};
  RowDesc out;
  out.AddField("", "n", DataType::kInt64);
  out.AddField("", "m", DataType::kTimestamp);
  HashAggregateOp agg(std::move(filter), {}, {count_star, max_time}, out);
  auto rows = CollectRows(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].int64_value(), 0);
  EXPECT_TRUE((*rows)[0][1].is_null());
}

TEST_F(ExecTest, DistinctRemovesDuplicates) {
  auto scan = std::make_unique<TableScanOp>(reads_, "r");
  ExprPtr loc = Bind(MakeColumnRef("r", "biz_loc"), *scan);
  RowDesc out;
  out.AddField("", "biz_loc", DataType::kString);
  auto proj = std::make_unique<ProjectOp>(std::move(scan), std::vector<ExprPtr>{loc}, out);
  DistinctOp distinct(std::move(proj));
  auto rows = CollectRows(&distinct);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(ExecTest, UnionAllConcatenates) {
  std::vector<OperatorPtr> inputs;
  inputs.push_back(std::make_unique<TableScanOp>(reads_, "a"));
  inputs.push_back(std::make_unique<TableScanOp>(reads_, "b"));
  UnionAllOp u(std::move(inputs));
  auto rows = CollectRows(&u);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
  EXPECT_EQ(u.output_desc().field(0).qualifier, "");  // qualifiers cleared
}

// --- Window operator ---

class WindowExecTest : public ExecTest {
 protected:
  // Builds scan -> sort(epc, rtime) -> window(aggs).
  std::unique_ptr<WindowOp> MakeWindow(std::vector<WindowAggSpec> aggs) {
    auto scan = std::make_unique<TableScanOp>(reads_, "r");
    auto sort = std::make_unique<SortOp>(
        std::move(scan), std::vector<SlotSortKey>{{0, true}, {1, true}});
    return std::make_unique<WindowOp>(std::move(sort), std::vector<size_t>{0},
                                      std::vector<SlotSortKey>{{1, true}},
                                      std::move(aggs));
  }

  ExprPtr BindToReads(const ExprPtr& e) {
    RowDesc d = RowDesc::FromSchema(reads_->schema(), "r");
    auto r = BindExpr(e, d);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.value() : nullptr;
  }
};

TEST_F(WindowExecTest, LagViaRowsFrame) {
  // max(biz_loc) over (partition by epc order by rtime
  //                    rows between 1 preceding and 1 preceding)
  WindowAggSpec prev_loc;
  prev_loc.func = AggFunc::kMax;
  prev_loc.arg = BindToReads(MakeColumnRef("r", "biz_loc"));
  prev_loc.frame = {FrameUnit::kRows, {false, -1}, {false, -1}};
  prev_loc.output_name = "prev_loc";
  prev_loc.result_type = DataType::kString;

  auto w = MakeWindow({prev_loc});
  auto rows = CollectRows(w.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 5u);
  // Sorted order: e1@0(locA), e1@2m(locA), e1@60m(locB), e2@5m, e2@70m.
  EXPECT_TRUE((*rows)[0][3].is_null());  // first row of e1: empty frame
  EXPECT_EQ((*rows)[1][3].string_value(), "locA");
  EXPECT_EQ((*rows)[2][3].string_value(), "locA");
  EXPECT_TRUE((*rows)[3][3].is_null());  // partition boundary resets
  EXPECT_EQ((*rows)[4][3].string_value(), "locA");
}

TEST_F(WindowExecTest, RangeFollowingFrame) {
  // count(*) over (partition by epc order by rtime
  //                range between 1 microsecond following and 10 min following)
  WindowAggSpec cnt;
  cnt.func = AggFunc::kCount;
  cnt.arg = nullptr;
  cnt.frame = {FrameUnit::kRange, {false, 1}, {false, Minutes(10)}};
  cnt.output_name = "n_next10";
  cnt.result_type = DataType::kInt64;

  auto w = MakeWindow({cnt});
  auto rows = CollectRows(w.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 5u);
  EXPECT_EQ((*rows)[0][3].int64_value(), 1);  // e1@0 sees e1@2m
  EXPECT_EQ((*rows)[1][3].int64_value(), 0);  // e1@2m: e1@60m too far
  EXPECT_EQ((*rows)[2][3].int64_value(), 0);
  EXPECT_EQ((*rows)[3][3].int64_value(), 0);  // e2@5m: e2@70m too far
  EXPECT_EQ((*rows)[4][3].int64_value(), 0);
}

TEST_F(WindowExecTest, RangeUnboundedFollowing) {
  WindowAggSpec cnt;
  cnt.func = AggFunc::kCount;
  cnt.arg = nullptr;
  cnt.frame = {FrameUnit::kRange, {false, 1}, {true, 1}};  // 1us following .. unbounded
  cnt.output_name = "n_after";
  cnt.result_type = DataType::kInt64;

  auto w = MakeWindow({cnt});
  auto rows = CollectRows(w.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][3].int64_value(), 2);  // e1@0: two later reads
  EXPECT_EQ((*rows)[2][3].int64_value(), 0);  // e1@60m: none
  EXPECT_EQ((*rows)[3][3].int64_value(), 1);  // e2@5m: one later
}

TEST_F(WindowExecTest, CaseInsideWindowAggregate) {
  // max(case when biz_loc = 'locB' then 1 else 0 end) over
  //   (range between 1 us following and 120 min following)
  ExprPtr case_expr = MakeCase(
      {MakeBinary(BinaryOp::kEq, MakeColumnRef("r", "biz_loc"),
                  MakeLiteral(Value::String("locB"))),
       MakeLiteral(Value::Int64(1)), MakeLiteral(Value::Int64(0))},
      true);
  WindowAggSpec has_b;
  has_b.func = AggFunc::kMax;
  has_b.arg = BindToReads(case_expr);
  has_b.frame = {FrameUnit::kRange, {false, 1}, {false, Minutes(120)}};
  has_b.output_name = "has_locB_after";
  has_b.result_type = DataType::kInt64;

  auto w = MakeWindow({has_b});
  auto rows = CollectRows(w.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][3].int64_value(), 1);  // locB read at 60m trails e1@0
  EXPECT_EQ((*rows)[1][3].int64_value(), 1);
  EXPECT_TRUE((*rows)[2][3].is_null());       // empty frame -> NULL for max
  EXPECT_EQ((*rows)[3][3].int64_value(), 0);  // e2 never hits locB
}

TEST_F(WindowExecTest, MultipleAggsComputedIndependently) {
  WindowAggSpec prev_time;
  prev_time.func = AggFunc::kMax;
  prev_time.arg = BindToReads(MakeColumnRef("r", "rtime"));
  prev_time.frame = {FrameUnit::kRows, {false, -1}, {false, -1}};
  prev_time.output_name = "prev_time";
  prev_time.result_type = DataType::kTimestamp;

  WindowAggSpec total;
  total.func = AggFunc::kCount;
  total.arg = nullptr;
  total.frame = {FrameUnit::kRows, {true, 0}, {true, 1}};  // whole partition
  total.output_name = "n_in_seq";
  total.result_type = DataType::kInt64;

  auto w = MakeWindow({prev_time, total});
  auto rows = CollectRows(w.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ((*rows)[0].size(), 5u);
  EXPECT_TRUE((*rows)[0][3].is_null());
  EXPECT_EQ((*rows)[0][4].int64_value(), 3);  // e1 partition size
  EXPECT_EQ((*rows)[1][3].timestamp_value(), 0);
  EXPECT_EQ((*rows)[3][4].int64_value(), 2);  // e2 partition size
}

TEST_F(WindowExecTest, AvgOverRowsFrame) {
  WindowAggSpec avg;
  avg.func = AggFunc::kAvg;
  avg.arg = BindToReads(MakeColumnRef("r", "rtime"));
  avg.frame = {FrameUnit::kRows, {true, 0}, {true, 1}};
  avg.output_name = "avg_time";
  avg.result_type = DataType::kInterval;  // avg of timestamps: engine-internal
  auto w = MakeWindow({avg});
  auto rows = CollectRows(w.get());
  ASSERT_TRUE(rows.ok());
  // e1 times: 0, 2m, 60m -> avg 20.67m; just check it is non-null and fixed.
  EXPECT_FALSE((*rows)[0][3].is_null());
}

TEST_F(WindowExecTest, ExplainTreeShowsCounts) {
  WindowAggSpec cnt;
  cnt.func = AggFunc::kCount;
  cnt.arg = nullptr;
  cnt.frame = {FrameUnit::kRows, {true, 0}, {true, 1}};
  cnt.output_name = "n";
  cnt.result_type = DataType::kInt64;
  auto w = MakeWindow({cnt});
  auto rows = CollectRows(w.get());
  ASSERT_TRUE(rows.ok());
  std::string explain = ExplainOperatorTree(*w);
  EXPECT_NE(explain.find("Window"), std::string::npos);
  EXPECT_NE(explain.find("Sort"), std::string::npos);
  EXPECT_NE(explain.find("TableScan"), std::string::npos);
  EXPECT_NE(explain.find("rows=5"), std::string::npos);
}

}  // namespace
}  // namespace rfid
