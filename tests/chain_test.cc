// Unit tests for the cleansing-chain builder: WITH-clause structure,
// derived-input substitution and filtering, table-reference replacement.
#include <gtest/gtest.h>

#include "cleansing/chain.h"
#include "cleansing/rule_parser.h"
#include "common/time_util.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "sql/render.h"

namespace rfid {
namespace {

class ChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema reads;
    reads.AddColumn("epc", DataType::kString);
    reads.AddColumn("rtime", DataType::kTimestamp);
    reads.AddColumn("reader", DataType::kString);
    reads.AddColumn("biz_loc", DataType::kString);
    case_r_ = db_.CreateTable("caseR", reads).value();
    pallet_r_ = db_.CreateTable("palletR", reads).value();
    Schema parent;
    parent.AddColumn("child_epc", DataType::kString);
    parent.AddColumn("parent_epc", DataType::kString);
    ASSERT_TRUE(db_.CreateTable("parent", parent).ok());
  }

  CleansingRule Rule(const std::string& text) {
    auto r = ParseRule(text);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : CleansingRule{};
  }

  Database db_;
  Table* case_r_ = nullptr;
  Table* pallet_r_ = nullptr;
};

TEST_F(ChainTest, SingleRuleTwoStages) {
  CleansingRule dup = Rule(
      "DEFINE dup ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE A.biz_loc = B.biz_loc ACTION DELETE B");
  auto chain = BuildCleansingChain({&dup}, db_, "__in",
                                   case_r_->schema().columns());
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  ASSERT_EQ(chain->with_clauses.size(), 2u);
  EXPECT_EQ(chain->with_clauses[0].first, "__r0_w");
  EXPECT_EQ(chain->with_clauses[1].first, "__r0");
  EXPECT_EQ(chain->output_name, "__r0");
  // First stage reads the caller's input clause.
  EXPECT_NE(chain->with_clauses[0].second.find("FROM __in"), std::string::npos);
  // Second stage reads the first.
  EXPECT_NE(chain->with_clauses[1].second.find("FROM __r0_w"), std::string::npos);
}

TEST_F(ChainTest, RulesChainInOrder) {
  CleansingRule r1 = Rule(
      "DEFINE a ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE A.biz_loc = B.biz_loc ACTION DELETE B");
  CleansingRule r2 = Rule(
      "DEFINE b ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE A.reader = B.reader ACTION DELETE B");
  auto chain = BuildCleansingChain({&r1, &r2}, db_, "__in",
                                   case_r_->schema().columns());
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->with_clauses.size(), 4u);
  // Second rule's window stage reads the first rule's output.
  EXPECT_NE(chain->with_clauses[2].second.find("FROM __r0"), std::string::npos);
  EXPECT_EQ(chain->output_name, "__r1");
}

TEST_F(ChainTest, DerivedInputSubstitutesOnTable) {
  CleansingRule missing = Rule(
      "DEFINE m ON caseR "
      "FROM (select epc, rtime, reader, biz_loc, 0 as is_pallet from caseR "
      "      union all "
      "      select parent.child_epc as epc, palletR.rtime, palletR.reader, "
      "             palletR.biz_loc, 1 as is_pallet "
      "      from palletR, parent where palletR.epc = parent.parent_epc) "
      "CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) "
      "WHERE A.is_pallet = 0 OR B.is_pallet = 1 ACTION KEEP A");
  auto chain = BuildCleansingChain({&missing}, db_, "__in",
                                   case_r_->schema().columns());
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  // A derived-input clause precedes the rule stages, with caseR replaced
  // by the restricted input but palletR untouched.
  ASSERT_GE(chain->with_clauses.size(), 3u);
  const std::string& derived = chain->with_clauses[0].second;
  EXPECT_EQ(chain->with_clauses[0].first, "__rin0");
  EXPECT_NE(derived.find("FROM __in"), std::string::npos) << derived;
  EXPECT_EQ(derived.find("FROM caseR"), std::string::npos) << derived;
  EXPECT_NE(derived.find("palletR"), std::string::npos) << derived;
  // Output schema gained is_pallet.
  bool has_flag = false;
  for (const Column& c : chain->output_columns) {
    if (c.name == "is_pallet") has_flag = true;
  }
  EXPECT_TRUE(has_flag);
}

TEST_F(ChainTest, DerivedFilterAppliedAfterUnion) {
  CleansingRule missing = Rule(
      "DEFINE m ON caseR "
      "FROM (select epc, rtime, reader, biz_loc, 0 as is_pallet from caseR) "
      "CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) "
      "WHERE A.is_pallet = 0 OR B.is_pallet = 1 ACTION KEEP A");
  auto chain =
      BuildCleansingChain({&missing}, db_, "__in", case_r_->schema().columns(),
                          "rtime >= TIMESTAMP 42");
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  // __rin0 then __rinf0 (the filter stage) then the rule stages.
  ASSERT_GE(chain->with_clauses.size(), 4u);
  EXPECT_EQ(chain->with_clauses[1].first, "__rinf0");
  EXPECT_NE(chain->with_clauses[1].second.find("WHERE rtime >= TIMESTAMP 42"),
            std::string::npos);
  EXPECT_NE(chain->with_clauses[2].second.find("FROM __rinf0"),
            std::string::npos);
}

TEST_F(ChainTest, ReplaceTableRefsKeepsAliasAndHitsSubqueries) {
  auto stmt = ParseSql(
                  "WITH v AS (SELECT * FROM caseR WHERE epc IN "
                  "(SELECT epc FROM caseR WHERE reader = 'x')) "
                  "SELECT c.epc FROM caseR c, v WHERE c.epc = v.epc")
                  .value();
  ReplaceTableRefs(stmt.get(), "caseR", "__clean");
  std::string sql = StatementToSql(*stmt);
  EXPECT_EQ(sql.find("FROM caseR"), std::string::npos) << sql;
  // The explicit alias 'c' survives so predicates keep resolving.
  EXPECT_NE(sql.find("__clean c,"), std::string::npos) << sql;
  // References without an explicit alias keep the old name as their alias
  // (so old qualified predicates still bind) — including inside the
  // IN-subquery.
  EXPECT_NE(sql.find("(SELECT epc FROM __clean caseR WHERE reader = 'x')"),
            std::string::npos)
      << sql;
}

TEST_F(ChainTest, ChainExecutesEndToEnd) {
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(case_r_
                    ->Append({Value::String("e"), Value::Timestamp(Minutes(i)),
                              Value::String("r"), Value::String("L")})
                    .ok());
  }
  CleansingRule dup = Rule(
      "DEFINE dup ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 MINUTES "
      "ACTION DELETE B");
  auto chain = BuildCleansingChain({&dup}, db_, "__in",
                                   case_r_->schema().columns());
  ASSERT_TRUE(chain.ok());
  std::string sql = "WITH __in AS (SELECT * FROM caseR)";
  for (const auto& [name, body] : chain->with_clauses) {
    sql += ", " + name + " AS (" + body + ")";
  }
  sql += " SELECT count(*) FROM " + chain->output_name;
  auto res = ExecuteSql(db_, sql);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows[0][0].int64_value(), 1);  // chain of duplicates collapses
}

}  // namespace
}  // namespace rfid
