// Execution guardrails: per-query memory budget, cooperative
// cancellation, wall-clock deadline, output-row limit, idempotent
// Close(), and the accounting surfaced through QueryResult / EXPLAIN.
#include <gtest/gtest.h>

#include "common/string_util.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "expr/row_batch.h"
#include "plan/planner.h"

namespace rfid {
namespace {

class GuardrailsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema big;
    big.AddColumn("epc", DataType::kString);
    big.AddColumn("v", DataType::kInt64);
    big_ = db_.CreateTable("big", big).value();
  }

  // Appends `n` rows; values are spread so ORDER BY v actually reorders.
  void Fill(int64_t n) {
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_TRUE(big_->Append({Value::String(StrFormat("epc%lld",
                                    static_cast<long long>(i % 977))),
                                Value::Int64((i * 7919) % n)})
                      .ok());
    }
    big_->ComputeStats();
  }

  Database db_;
  Table* big_ = nullptr;
};

// The acceptance scenario: a 100k-row sort under a 1 MB budget must fail
// with kResourceExhausted; the identical query with no budget succeeds.
TEST_F(GuardrailsTest, SortBudgetExceededAndUnlimitedSucceeds) {
  Fill(100000);
  const std::string sql = "SELECT epc, v FROM big ORDER BY v";

  ExecLimits limits;
  limits.memory_budget_bytes = 1 << 20;  // 1 MB
  ExecContext budgeted(limits);
  auto limited = ExecuteSql(db_, sql, &budgeted);
  ASSERT_FALSE(limited.ok());
  EXPECT_EQ(limited.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(limited.status().message().find("memory budget"),
            std::string::npos)
      << limited.status().ToString();
  // Everything charged was released during unwinding.
  EXPECT_EQ(budgeted.memory_used(), 0u);
  EXPECT_GT(budgeted.memory_peak(), 0u);

  ExecContext unlimited;
  auto ok = ExecuteSql(db_, sql, &unlimited);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().rows.size(), 100000u);
  EXPECT_EQ(unlimited.memory_used(), 0u);
  EXPECT_GT(ok.value().peak_memory_bytes, 1u << 20);
}

TEST_F(GuardrailsTest, DeadlineExceeded) {
  Fill(5000);
  ExecLimits limits;
  limits.timeout_micros = 1;  // expires before execution starts
  ExecContext ctx(limits);
  auto res = ExecuteSql(db_, "SELECT epc, v FROM big ORDER BY v", &ctx);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ctx.memory_used(), 0u);
}

TEST_F(GuardrailsTest, CancellationAborts) {
  Fill(1000);
  ExecContext ctx;
  ctx.RequestCancel();
  auto res = ExecuteSql(db_, "SELECT * FROM big", &ctx);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCancelled);
}

TEST_F(GuardrailsTest, OutputRowLimit) {
  Fill(1000);
  ExecLimits limits;
  limits.max_output_rows = 10;
  ExecContext ctx(limits);
  auto res = ExecuteSql(db_, "SELECT * FROM big", &ctx);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(res.status().message().find("row limit"), std::string::npos);
  EXPECT_EQ(ctx.memory_used(), 0u);

  limits.max_output_rows = 1000;
  ExecContext enough(limits);
  auto ok = ExecuteSql(db_, "SELECT * FROM big", &enough);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().rows.size(), 1000u);
}

TEST_F(GuardrailsTest, AggregateAndDistinctChargeBudget) {
  Fill(50000);
  ExecLimits limits;
  limits.memory_budget_bytes = 16 << 10;  // 16 KB: far below 50k groups
  ExecContext ctx(limits);
  auto agg =
      ExecuteSql(db_, "SELECT v, count(*) FROM big GROUP BY v", &ctx);
  ASSERT_FALSE(agg.ok());
  EXPECT_EQ(agg.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.memory_used(), 0u);

  ExecContext ctx2(limits);
  auto dist = ExecuteSql(db_, "SELECT DISTINCT epc, v FROM big", &ctx2);
  ASSERT_FALSE(dist.ok());
  EXPECT_EQ(dist.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx2.memory_used(), 0u);
}

TEST_F(GuardrailsTest, CloseIsIdempotentAndSafeWithoutOpen) {
  Fill(10);
  SortOp op(std::make_unique<TableScanOp>(big_, "big"),
            {SlotSortKey{1, true}});
  op.Close();  // never opened: no-op
  ASSERT_TRUE(op.Open().ok());
  Row row;
  ASSERT_TRUE(op.Next(&row).ok());
  op.Close();
  op.Close();  // second close: no-op
  EXPECT_EQ(ExecContext::Default()->memory_used(), 0u);

  // Reopen after close works.
  ASSERT_TRUE(op.Open().ok());
  auto next = op.Next(&row);
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next.value());
  op.Close();
  EXPECT_EQ(ExecContext::Default()->memory_used(), 0u);
}

TEST_F(GuardrailsTest, ExplainReportsMemoryAndChecks) {
  Fill(100);
  ExecContext ctx;
  auto res = ExecuteSql(db_, "SELECT epc, v FROM big ORDER BY v", &ctx);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_NE(res.value().explain.find(" mem="), std::string::npos)
      << res.value().explain;
  EXPECT_NE(res.value().explain.find(" checks="), std::string::npos)
      << res.value().explain;
  EXPECT_GT(res.value().peak_memory_bytes, 0u);
  // The vectorized engine checks cancellation once per batch rather than
  // once per row, so only assert that checks happened at all here...
  EXPECT_GT(ctx.cancel_checks(), 0u);

  // ...and that the interpreted engine still checks at row granularity.
  SetVectorizedForTest(0);
  ExecContext row_ctx;
  auto row_res = ExecuteSql(db_, "SELECT epc, v FROM big ORDER BY v", &row_ctx);
  SetVectorizedForTest(-1);
  ASSERT_TRUE(row_res.ok()) << row_res.status().ToString();
  EXPECT_GT(row_ctx.cancel_checks(), 100u);
}

TEST_F(GuardrailsTest, CollectRowsHonorsContextWithoutExecuteSql) {
  Fill(100);
  ExecLimits limits;
  limits.max_output_rows = 5;
  ExecContext ctx(limits);
  TableScanOp scan(big_, "big");
  auto rows = CollectRows(&scan, &ctx);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.memory_used(), 0u);
}

}  // namespace
}  // namespace rfid
