// Golden expression-semantics corpus: NULL three-valued logic, numeric
// coercion, division edges, BETWEEN/IN/CASE/COALESCE/LIKE — pinned
// against hardcoded expected values so the AST interpreter can never
// drift silently, then swept as a bytecode-vs-interpreter equivalence
// suite: every corpus expression must compile (or explicitly fall back)
// and produce bit-identical results through ExprProgram::Eval.
#include <gtest/gtest.h>

#include <bit>
#include <string>
#include <vector>

#include "expr/bytecode.h"
#include "expr/eval.h"
#include "expr/row_batch.h"
#include "sql/parser.h"

namespace rfid {
namespace {

RowDesc CorpusDesc() {
  RowDesc d;
  d.AddField("t", "a", DataType::kInt64);
  d.AddField("t", "b", DataType::kInt64);
  d.AddField("t", "x", DataType::kDouble);
  d.AddField("t", "s", DataType::kString);
  d.AddField("t", "ts", DataType::kTimestamp);
  return d;
}

// Rows chosen to hit NULLs in every column, zeros (division edges),
// negatives, empty strings, and literal LIKE metacharacters in data.
std::vector<Row> CorpusRows() {
  return {
      {Value::Int64(1), Value::Int64(2), Value::Double(1.5),
       Value::String("abc"), Value::Timestamp(1000)},
      {Value::Null(), Value::Int64(5), Value::Null(), Value::Null(),
       Value::Null()},
      {Value::Int64(0), Value::Int64(0), Value::Double(0.0), Value::String(""),
       Value::Timestamp(0)},
      {Value::Int64(-3), Value::Int64(7), Value::Double(-2.25),
       Value::String("xyz"), Value::Timestamp(500)},
      {Value::Int64(5), Value::Null(), Value::Double(2.5),
       Value::String("aXb"), Value::Null()},
      {Value::Int64(42), Value::Int64(6), Value::Double(0.5),
       Value::String("a%b"), Value::Timestamp(123456)},
      {Value::Int64(7), Value::Int64(7), Value::Double(7.0),
       Value::String("abc"), Value::Timestamp(789)},
  };
}

// The full corpus swept for bytecode equivalence. Every expression is
// well-typed over CorpusDesc.
const char* const kCorpus[] = {
    // Arithmetic and coercion.
    "a + b", "a - b", "a * b", "a + x", "x * 2", "x - a", "0 - a",
    // Division edges: / always yields DOUBLE; divide-by-zero is NULL.
    "a / b", "a / 0", "x / 0", "b / (a - a)", "a / 2",
    // Comparisons, including double-vs-int and strings.
    "a < b", "a = b", "a >= b", "x < a", "x = a", "s = 'abc'", "s < 'b'",
    "ts < TIMESTAMP 1000",
    // Three-valued logic.
    "a < b AND b < 10", "a < b OR b < 10", "NOT a = b",
    "a IS NULL", "a IS NOT NULL", "x IS NULL", "s IS NOT NULL",
    "a IS NULL AND b IS NULL", "a IS NULL OR x IS NULL",
    // BETWEEN (inclusive both ends; NULL operand -> NULL).
    "a BETWEEN 0 AND 5", "a NOT BETWEEN b AND 10", "x BETWEEN 0.5 AND 2.5",
    // IN lists, with and without NULL members.
    "a IN (1, 2, 3)", "a IN (1, NULL)", "a NOT IN (1, NULL)",
    "s IN ('abc', 'xyz')", "a NOT IN (2, 4)",
    // CASE / COALESCE.
    "CASE WHEN a < b THEN a ELSE b END",
    "CASE WHEN a IS NULL THEN 0 WHEN a > 5 THEN 1 END",
    "coalesce(a, b)", "coalesce(a, b, 0)",
    // LIKE (%, _, literal metacharacters in the data).
    "s LIKE 'a%'", "s LIKE '%b_'", "s NOT LIKE '%z%'", "s LIKE 'a_b'",
    "s LIKE ''",
    // Composites.
    "(a + b) * 2 > 10 OR s LIKE 'x%'",
    "CASE WHEN a / 0 IS NULL THEN coalesce(b, -1) ELSE a END",
};

// Exact equality including type tag and the raw bit pattern of doubles —
// ToString-level comparison could mask coercion or -0.0/NaN drift.
bool BitIdentical(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case DataType::kNull:
      return true;
    case DataType::kString:
      return a.string_value() == b.string_value();
    case DataType::kDouble:
      return std::bit_cast<int64_t>(a.double_value()) ==
             std::bit_cast<int64_t>(b.double_value());
    default:
      return a.int64_value() == b.int64_value();
  }
}

class ExprGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    desc_ = CorpusDesc();
    rows_ = CorpusRows();
  }

  ExprPtr Bind(const std::string& text) {
    auto parsed = ParseExpression(text);
    EXPECT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    if (!parsed.ok()) return nullptr;
    auto bound = BindExpr(parsed.value(), desc_);
    EXPECT_TRUE(bound.ok()) << text << ": " << bound.status().ToString();
    return bound.ok() ? std::move(bound).value() : nullptr;
  }

  Value Eval(const std::string& text, size_t row) {
    ExprPtr e = Bind(text);
    if (e == nullptr) return Value::Null();
    auto v = EvalExpr(*e, rows_[row]);
    EXPECT_TRUE(v.ok()) << text << ": " << v.status().ToString();
    return v.ok() ? std::move(v).value() : Value::Null();
  }

  void ExpectGolden(const std::string& text, size_t row, const Value& want) {
    Value got = Eval(text, row);
    EXPECT_TRUE(BitIdentical(got, want))
        << text << " over row " << row << ": got " << got.ToString() << " ("
        << DataTypeName(got.type()) << "), want " << want.ToString() << " ("
        << DataTypeName(want.type()) << ")";
  }

  RowDesc desc_;
  std::vector<Row> rows_;
};

TEST_F(ExprGoldenTest, DivisionEdges) {
  // Division always produces DOUBLE; dividing by zero yields NULL (not an
  // error), which is what makes eager vectorized evaluation safe.
  ExpectGolden("a / b", 0, Value::Double(0.5));
  ExpectGolden("a / 2", 3, Value::Double(-1.5));
  ExpectGolden("a / 0", 0, Value::Null());
  ExpectGolden("x / 0", 0, Value::Null());
  ExpectGolden("b / (a - a)", 0, Value::Null());
  ExpectGolden("a / b", 2, Value::Null());   // 0 / 0
  ExpectGolden("a / b", 1, Value::Null());   // NULL / 5
}

TEST_F(ExprGoldenTest, NumericCoercion) {
  ExpectGolden("a + b", 0, Value::Int64(3));
  ExpectGolden("a + x", 0, Value::Double(2.5));  // int + double -> double
  ExpectGolden("x * 2", 3, Value::Double(-4.5));
  ExpectGolden("x - a", 4, Value::Double(-2.5));
  ExpectGolden("0 - a", 3, Value::Int64(3));
  ExpectGolden("x = a", 6, Value::Bool(true));   // 7.0 = 7
  ExpectGolden("x < a", 0, Value::Bool(false));  // 1.5 < 1
}

TEST_F(ExprGoldenTest, ThreeValuedLogic) {
  // Row 1 has a = NULL, b = 5: NULL comparisons are NULL, AND/OR are
  // Kleene (NULL AND TRUE = NULL, NULL OR TRUE = TRUE).
  ExpectGolden("a < b", 1, Value::Null());
  ExpectGolden("a < b AND b < 10", 1, Value::Null());
  ExpectGolden("a < b OR b < 10", 1, Value::Bool(true));
  ExpectGolden("NOT a = b", 1, Value::Null());
  ExpectGolden("a IS NULL", 1, Value::Bool(true));
  ExpectGolden("a IS NOT NULL", 1, Value::Bool(false));
  ExpectGolden("a IS NULL AND b IS NULL", 1, Value::Bool(false));
  // NULL AND FALSE is FALSE; FALSE AND NULL is FALSE; TRUE AND NULL
  // stays NULL.
  ExpectGolden("a < 0 AND b IS NULL", 1, Value::Bool(false));
  ExpectGolden("b < 0 AND a < b", 1, Value::Bool(false));
  ExpectGolden("b > 0 AND a < b", 1, Value::Null());
}

TEST_F(ExprGoldenTest, BetweenAndIn) {
  ExpectGolden("a BETWEEN 0 AND 5", 0, Value::Bool(true));
  ExpectGolden("a BETWEEN 0 AND 5", 3, Value::Bool(false));  // -3
  ExpectGolden("a BETWEEN 0 AND 5", 1, Value::Null());       // NULL operand
  ExpectGolden("x BETWEEN 0.5 AND 2.5", 5, Value::Bool(true));  // endpoint
  ExpectGolden("a IN (1, 2, 3)", 0, Value::Bool(true));
  ExpectGolden("a IN (1, 2, 3)", 2, Value::Bool(false));
  ExpectGolden("a IN (1, 2, 3)", 1, Value::Null());  // NULL probe
  // A NULL list member turns misses into UNKNOWN, not FALSE.
  ExpectGolden("a IN (1, NULL)", 0, Value::Bool(true));
  ExpectGolden("a IN (1, NULL)", 2, Value::Null());
  ExpectGolden("a NOT IN (1, NULL)", 0, Value::Bool(false));
  ExpectGolden("a NOT IN (1, NULL)", 2, Value::Null());
  ExpectGolden("s IN ('abc', 'xyz')", 3, Value::Bool(true));
}

TEST_F(ExprGoldenTest, CaseCoalesceLike) {
  ExpectGolden("CASE WHEN a < b THEN a ELSE b END", 0, Value::Int64(1));
  ExpectGolden("CASE WHEN a < b THEN a ELSE b END", 6, Value::Int64(7));
  // No ELSE and no matching WHEN -> NULL.
  ExpectGolden("CASE WHEN a IS NULL THEN 0 WHEN a > 5 THEN 1 END", 0,
               Value::Null());
  ExpectGolden("CASE WHEN a IS NULL THEN 0 WHEN a > 5 THEN 1 END", 1,
               Value::Int64(0));
  ExpectGolden("coalesce(a, b)", 1, Value::Int64(5));
  ExpectGolden("coalesce(a, b)", 0, Value::Int64(1));
  ExpectGolden("coalesce(a, b, 0)", 1, Value::Int64(5));
  // LIKE: % and _ wildcards; NULL text -> NULL; empty pattern matches
  // only the empty string; metacharacters in the data are plain chars.
  ExpectGolden("s LIKE 'a%'", 0, Value::Bool(true));
  ExpectGolden("s LIKE 'a%'", 3, Value::Bool(false));
  ExpectGolden("s LIKE 'a%'", 1, Value::Null());
  ExpectGolden("s LIKE 'a_b'", 4, Value::Bool(true));   // aXb
  ExpectGolden("s LIKE 'a_b'", 5, Value::Bool(true));   // a%b
  ExpectGolden("s LIKE ''", 2, Value::Bool(true));
  ExpectGolden("s LIKE ''", 0, Value::Bool(false));
  ExpectGolden("s NOT LIKE '%z%'", 3, Value::Bool(false));
}

// Every corpus expression, over every corpus row: the compiled program
// must agree with the interpreter bit-for-bit. Expressions the compiler
// rejects are exercised through the same helper so a future regression in
// Compile coverage shows up as a fallback, not silent skipping.
TEST_F(ExprGoldenTest, BytecodeMatchesInterpreterEverywhere) {
  RowBatch batch(desc_.num_fields(), rows_.size());
  for (const Row& r : rows_) batch.AppendRow(r);

  size_t compiled_count = 0;
  for (const char* text : kCorpus) {
    ExprPtr e = Bind(text);
    ASSERT_NE(e, nullptr) << text;
    auto prog = ExprProgram::Compile(*e);
    if (!prog.ok()) continue;  // interpreter fallback is allowed, not silent
    ++compiled_count;

    ColumnVector out;
    ExprScratch scratch;
    prog.value().Eval(batch, nullptr, 0, &out, &scratch);
    ASSERT_EQ(out.size(), rows_.size()) << text;
    for (size_t i = 0; i < rows_.size(); ++i) {
      auto want = EvalExpr(*e, rows_[i]);
      ASSERT_TRUE(want.ok()) << text;
      Value got = out.ValueAt(i);
      EXPECT_TRUE(BitIdentical(got, want.value()))
          << text << " over row " << i << ": bytecode " << got.ToString()
          << " (" << DataTypeName(got.type()) << "), interpreter "
          << want.value().ToString() << " ("
          << DataTypeName(want.value().type()) << ")";
    }

    // Selection-vector form: evaluating a strict subset must match the
    // interpreter on selected rows and leave the rest NULL.
    std::vector<uint32_t> sel;
    for (uint32_t i = 0; i < rows_.size(); i += 2) sel.push_back(i);
    prog.value().Eval(batch, sel.data(), sel.size(), &out, &scratch);
    ASSERT_EQ(out.size(), rows_.size()) << text;
    for (uint32_t i : sel) {
      auto want = EvalExpr(*e, rows_[i]);
      ASSERT_TRUE(want.ok()) << text;
      EXPECT_TRUE(BitIdentical(out.ValueAt(i), want.value()))
          << text << " over selected row " << i;
    }
  }
  // The corpus is built from compilable constructs; if most of it stops
  // compiling, the vectorized engine silently degraded to row-at-a-time.
  EXPECT_GE(compiled_count, std::size(kCorpus) - 2)
      << "bytecode compiler rejected corpus expressions it used to accept";
}

// Predicate form: EvalFilter must keep exactly the rows where the
// interpreter's EvalPredicate says TRUE (NULL counts as false).
TEST_F(ExprGoldenTest, FilterProgramMatchesEvalPredicate) {
  const char* preds[] = {
      "a < b AND b < 10", "a IS NULL OR x IS NULL", "a IN (1, NULL)",
      "s LIKE 'a%'",      "a BETWEEN 0 AND 5",      "a / 0 IS NULL",
  };
  RowBatch batch(desc_.num_fields(), rows_.size());
  for (const Row& r : rows_) batch.AppendRow(r);

  for (const char* text : preds) {
    ExprPtr e = Bind(text);
    ASSERT_NE(e, nullptr) << text;
    auto prog = FilterProgram::Compile(*e);
    ASSERT_TRUE(prog.ok()) << text << ": " << prog.status().ToString();

    std::vector<uint32_t> sel(rows_.size());
    for (uint32_t i = 0; i < rows_.size(); ++i) sel[i] = i;
    ExprScratch scratch;
    prog.value().Apply(batch, &sel, &scratch);

    std::vector<uint32_t> want;
    for (uint32_t i = 0; i < rows_.size(); ++i) {
      auto v = EvalPredicate(*e, rows_[i]);
      ASSERT_TRUE(v.ok()) << text;
      if (v.value()) want.push_back(i);
    }
    EXPECT_EQ(sel, want) << text;
  }
}

}  // namespace
}  // namespace rfid
