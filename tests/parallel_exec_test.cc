// Parallel execution correctness: parallel plans must be *bit-identical*
// to serial ones (exact row order and values, not just set-equal) across
// plain scans/sorts/joins/windows and all three cleansing rewrite
// strategies; EXPLAIN must surface the planner's serial-vs-parallel
// decision and per-operator DOP; and guardrails (memory budget, deadline,
// cancellation) must trip mid-parallel-pipeline exactly as they do
// serially, releasing all accounted memory on unwind.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/string_util.h"
#include "exec/parallel.h"
#include "plan/planner.h"
#include "rewrite/rewriter.h"
#include "rfidgen/anomaly.h"
#include "rfidgen/rfidgen.h"
#include "rfidgen/workload.h"

namespace rfid {
namespace {

// Exact, order-sensitive serialization: parallel output must match the
// serial plan row for row, so no sorting before comparison.
std::vector<std::string> Exact(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& r : rows) {
    std::string s;
    for (const Value& v : r) s += v.ToString() + "|";
    out.push_back(std::move(s));
  }
  return out;
}

class ParallelExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rfidgen::GeneratorOptions gen;
    gen.num_pallets = 8;
    gen.min_cases_per_pallet = 3;
    gen.max_cases_per_pallet = 6;
    gen.reads_per_site = 5;
    gen.num_stores = 30;
    gen.num_warehouses = 10;
    gen.num_dcs = 5;
    gen.locations_per_site = 10;
    auto g = rfidgen::Generate(gen, &db_);
    ASSERT_TRUE(g.ok()) << g.status().ToString();

    rfidgen::AnomalyOptions anomalies;
    anomalies.dirty_fraction = 0.15;
    auto a = rfidgen::InjectAnomalies(anomalies, &db_);
    ASSERT_TRUE(a.ok()) << a.status().ToString();

    engine_ = std::make_unique<CleansingRuleEngine>(&db_);
    for (const std::string& def : workload::StandardRuleDefinitions(3)) {
      Status st = engine_->DefineRule(def);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    rewriter_ = std::make_unique<QueryRewriter>(&db_, engine_.get());
  }

  void TearDown() override {
    SetParallelPolicyForTest(0, 0);  // restore env/hardware defaults
  }

  QueryResult Run(const std::string& sql, ExecContext* ctx = nullptr) {
    auto res = ctx == nullptr ? ExecuteSql(db_, sql) : ExecuteSql(db_, sql, ctx);
    EXPECT_TRUE(res.ok()) << sql << "\n" << res.status().ToString();
    return res.ok() ? std::move(res).value() : QueryResult{};
  }

  std::string Rewrite(const std::string& sql, RewriteStrategy strategy) {
    RewriteOptions opts;
    opts.strategy = strategy;
    auto r = rewriter_->Rewrite(sql, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->sql : std::string();
  }

  // Runs `sql` serially, then with a forced DOP, and demands identical
  // output including row order.
  void ExpectBitIdentical(const std::string& sql, int dop) {
    SetParallelPolicyForTest(1, 0);
    QueryResult serial = Run(sql);
    EXPECT_EQ(serial.max_dop, 1) << serial.explain;

    SetParallelPolicyForTest(dop, /*min_parallel_rows=*/64);
    QueryResult parallel = Run(sql);
    EXPECT_EQ(Exact(serial.rows), Exact(parallel.rows))
        << "parallel output diverged from serial (dop=" << dop << ")\nsql: "
        << sql << "\nexplain:\n" << parallel.explain;
  }

  Database db_;
  std::unique_ptr<CleansingRuleEngine> engine_;
  std::unique_ptr<QueryRewriter> rewriter_;
};

TEST_F(ParallelExecTest, PlainScanSortJoinAggregateBitIdentical) {
  int64_t t1 = workload::T1ForSelectivity(db_, 0.6);
  for (int dop : {2, 4, 8}) {
    // Full scan + fused filter (ties in rtime exercise sort stability).
    ExpectBitIdentical(
        StrFormat("SELECT epc, rtime, biz_loc FROM caseR WHERE rtime <= "
                  "TIMESTAMP %lld ORDER BY rtime, epc",
                  static_cast<long long>(t1)),
        dop);
    // Hash join against the reference table, probe order preserved.
    ExpectBitIdentical(
        "SELECT r.epc, r.rtime, e.product FROM caseR r, epc_info e "
        "WHERE r.epc = e.epc",
        dop);
    // Aggregation over a parallel scan.
    ExpectBitIdentical(
        "SELECT biz_loc, count(*) FROM caseR GROUP BY biz_loc "
        "ORDER BY biz_loc",
        dop);
  }
}

TEST_F(ParallelExecTest, AllRewriteStrategiesBitIdentical) {
  std::string q1 = workload::Q1(workload::T1ForSelectivity(db_, 0.5));
  std::string q2 = workload::Q2(workload::T2ForSelectivity(db_, 0.5), "dc2");
  for (RewriteStrategy strategy :
       {RewriteStrategy::kNaive, RewriteStrategy::kExpanded,
        RewriteStrategy::kJoinBack}) {
    ExpectBitIdentical(Rewrite(q1, strategy), 4);
    ExpectBitIdentical(Rewrite(q2, strategy), 4);
  }
}

TEST_F(ParallelExecTest, ExplainReportsDecisionAndPerOperatorDop) {
#ifdef RFID_PARALLEL_OFF
  GTEST_SKIP() << "built with RFID_PARALLEL=OFF; every plan is serial";
#endif
  SetParallelPolicyForTest(4, 16);
  QueryResult res = Run(
      "SELECT epc, rtime FROM caseR WHERE biz_loc <> 'none' ORDER BY rtime, "
      "epc");
  EXPECT_GT(res.max_dop, 1) << res.explain;
  EXPECT_NE(res.explain.find("parallelism: dop="), std::string::npos)
      << res.explain;
  EXPECT_NE(res.explain.find(" dop=4"), std::string::npos) << res.explain;

  // Below the threshold the same query plans serial, and says so.
  SetParallelPolicyForTest(4, 1000000000);
  QueryResult serial = Run("SELECT epc FROM caseR");
  EXPECT_EQ(serial.max_dop, 1);
  EXPECT_NE(serial.explain.find("parallelism: serial"), std::string::npos)
      << serial.explain;
  // Every operator line reports its dop.
  EXPECT_NE(serial.explain.find(" dop=1"), std::string::npos)
      << serial.explain;
}

TEST_F(ParallelExecTest, MemoryBudgetTripsMidParallelPipeline) {
  SetParallelPolicyForTest(4, 64);
  ExecLimits limits;
  limits.memory_budget_bytes = 4 << 10;  // 4 KB: far below the scan output
  ExecContext ctx(limits);
  auto res = ExecuteSql(
      db_, "SELECT epc, rtime, biz_loc FROM caseR ORDER BY rtime", &ctx);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
  // Unwinding a parallel pipeline releases everything that was charged.
  EXPECT_EQ(ctx.memory_used(), 0u);
}

TEST_F(ParallelExecTest, DeadlineTripsMidParallelPipeline) {
  SetParallelPolicyForTest(4, 64);
  ExecLimits limits;
  limits.timeout_micros = 1;  // expires before the first morsel completes
  ExecContext ctx(limits);
  auto res = ExecuteSql(
      db_, "SELECT epc, rtime FROM caseR ORDER BY rtime, epc", &ctx);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ctx.memory_used(), 0u);
}

TEST_F(ParallelExecTest, CancellationTripsMidParallelPipeline) {
  SetParallelPolicyForTest(4, 64);
  ExecContext ctx;
  ctx.RequestCancel();
  auto res = ExecuteSql(db_, "SELECT epc FROM caseR", &ctx);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(ctx.memory_used(), 0u);
}

}  // namespace
}  // namespace rfid
