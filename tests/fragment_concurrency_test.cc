// Fragment-cache coherence under live load: query threads run the
// stitched (cached) cleansing path against snapshots pinned from a live
// IngestDriver while the writer invalidates touched regions on every
// epoch. Every iteration compares the stitched result bit-exactly with
// the uncached naive rewrite at the *same* snapshot, so a torn
// invalidation (serving a fragment built without rows the snapshot can
// see, or vice versa) fails the test. This suite is a target of the
// RFID_SANITIZE=thread pass in scripts/check.sh: the shared cache is
// hammered by Lookup/Insert from the query threads and OnIngest from
// the writer the whole time.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/fragment_cache.h"
#include "ingest/ingest.h"
#include "plan/planner.h"
#include "rewrite/fragment_stitch.h"
#include "rewrite/rewriter.h"
#include "rfidgen/stream.h"
#include "rfidgen/workload.h"
#include "storage/snapshot.h"

namespace rfid {
namespace {

using cache::FragmentCache;
using cache::FragmentCacheOptions;
using ingest::IngestDriver;
using ingest::IngestPipeline;
using ingest::TableBatch;
using rfidgen::ReadStream;
using rfidgen::StreamBatch;
using rfidgen::StreamOptions;

constexpr int kQueryThreads = 3;
constexpr uint64_t kLiveBatches = 32;
constexpr size_t kBatchRows = 24;
constexpr uint64_t kWarmupEpochs = 8;

std::vector<TableBatch> ToGroup(StreamBatch b) {
  std::vector<TableBatch> group;
  group.push_back({"caseR", std::move(b.case_rows)});
  group.push_back({"palletR", std::move(b.pallet_rows)});
  group.push_back({"parent", std::move(b.parent_rows)});
  group.push_back({"epc_info", std::move(b.info_rows)});
  return group;
}

std::string BitExact(const Value& v) {
  if (v.type() == DataType::kDouble) {
    uint64_t bits = 0;
    double d = v.double_value();
    std::memcpy(&bits, &d, sizeof(bits));
    return "d:" + std::to_string(bits);
  }
  return std::string(DataTypeName(v.type())) + ":" + v.ToString();
}

std::string Exact(const std::vector<Row>& rows) {
  std::string out;
  for (const Row& r : rows) {
    for (const Value& v : r) out += BitExact(v) + "|";
    out += "\n";
  }
  return out;
}

struct ThreadReport {
  // Read by the main thread while the worker runs (progress pacing);
  // everything else is only read after join.
  std::atomic<uint64_t> iterations{0};
  uint64_t stitched_runs = 0;
  uint64_t cache_hits = 0;
  uint64_t violations = 0;
  std::string first_violation;
};

TEST(FragmentConcurrencyTest, StitchedQueriesStayBitIdenticalUnderLiveLoad) {
  Database db;
  StreamOptions opt;
  opt.seed = 23;
  opt.num_pallets = 40;
  auto stream = ReadStream::Create(&db, opt);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();

  IngestPipeline pipeline(&db);
  FragmentCacheOptions copt;
  // Small regions relative to the stream volume so the scheme gets a
  // real partition and live batches only touch its tail.
  copt.target_region_rows = 32;
  copt.max_regions = 8;
  FragmentCache cache(copt);
  pipeline.set_fragment_cache(&cache);

  // Warm up synchronously so the rule predicates have data behind them
  // before any concurrent writer runs.
  for (uint64_t i = 0; i < kWarmupEpochs; ++i) {
    ASSERT_FALSE((*stream)->exhausted());
    ASSERT_TRUE(
        pipeline.Apply(ToGroup((*stream)->NextBatch(kBatchRows))).ok());
  }

  CleansingRuleEngine engine(&db);
  for (const std::string& def : workload::StandardRuleDefinitions(3)) {
    ASSERT_TRUE(engine.DefineRule(def).ok());
  }
  const std::string sql = "SELECT epc, biz_loc, rtime FROM caseR";

  // Progress-paced writer: at most ~one batch per completed query
  // iteration (after a small head start), so feeds interleave with
  // lookups and inserts at any execution speed — wall-clock pacing
  // breaks under the 10-20x sanitizer slowdowns. The spin is capped so
  // a wedged query thread turns into assertion failures, not a hang.
  std::atomic<uint64_t> total_iters{0};
  IngestDriver::Options dopts;
  dopts.pause_micros = 500;
  dopts.max_batches = kLiveBatches;
  uint64_t batches_fed = 0;  // driver thread only
  IngestDriver driver(
      &pipeline,
      [&stream, &total_iters, &batches_fed] {
        ++batches_fed;
        for (int spin = 0;
             spin < 10000 && total_iters.load(std::memory_order_relaxed) + 2 <
                                 batches_fed;
             ++spin) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return ToGroup((*stream)->NextBatch(kBatchRows));
      },
      dopts);
  driver.Start();

  std::atomic<bool> stop{false};
  ThreadReport reports[kQueryThreads];
  std::vector<std::thread> threads;
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadReport& report = reports[t];
      auto violation = [&report](const std::string& what) {
        if (report.violations == 0) report.first_violation = what;
        ++report.violations;
      };
      while (!stop.load(std::memory_order_relaxed)) {
        SnapshotPtr snap = pipeline.snapshot();

        ExecContext stitched_ctx;
        stitched_ctx.set_snapshot(snap);
        auto stitch =
            StitchWithFragmentCache(sql, &db, engine, &cache, &stitched_ctx);
        if (!stitch.ok()) {
          violation("stitch error: " + stitch.status().ToString());
          break;
        }
        Result<QueryResult> stitched =
            stitch->used ? ExecuteSql(db, stitch->sql, &stitched_ctx)
                         : ExecuteSql(db, sql, &stitched_ctx);
        if (!stitched.ok()) {
          violation("stitched exec: " + stitched.status().ToString());
          break;
        }
        if (stitch->used) {
          ++report.stitched_runs;
          report.cache_hits += stitch->hits;
        }

        ExecContext naive_ctx;
        naive_ctx.set_snapshot(snap);
        QueryRewriter rewriter(&db, &engine);
        RewriteOptions ropts;
        ropts.strategy = RewriteStrategy::kNaive;
        ropts.exec_context = &naive_ctx;
        auto info = rewriter.Rewrite(sql, ropts);
        if (!info.ok()) {
          violation("rewrite error: " + info.status().ToString());
          break;
        }
        auto uncached = ExecuteSql(db, info->sql, &naive_ctx);
        if (!uncached.ok()) {
          violation("uncached exec: " + uncached.status().ToString());
          break;
        }
        if (Exact(stitched->rows) != Exact(uncached->rows)) {
          violation("stitched result diverged from uncached at epoch " +
                    std::to_string(snap->epoch));
        }
        ++report.iterations;
        total_iters.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The driver stops itself after kLiveBatches progress-paced feeds.
  ASSERT_TRUE(driver.Join().ok());
  EXPECT_GE(pipeline.epoch(), kWarmupEpochs + kLiveBatches)
      << "stream exhausted before the load target; grow num_pallets";
  // Watermark is frozen now; two more full iterations per thread run
  // against a quiescent cache, so fragment reuse is guaranteed before
  // the hit assertions below. Capped wait: a wedged thread falls
  // through to the assertions instead of hanging the test.
  uint64_t quiesce_target[kQueryThreads];
  for (int t = 0; t < kQueryThreads; ++t) {
    quiesce_target[t] = reports[t].iterations.load() + 2;
  }
  for (int spin = 0; spin < 30000; ++spin) {
    bool done = true;
    for (int t = 0; t < kQueryThreads; ++t) {
      done = done && reports[t].iterations.load() >= quiesce_target[t];
    }
    if (done) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();

  uint64_t iterations = 0, stitched_runs = 0, cache_hits = 0;
  for (const ThreadReport& r : reports) {
    EXPECT_EQ(r.violations, 0u) << r.first_violation;
    iterations += r.iterations.load();
    stitched_runs += r.stitched_runs;
    cache_hits += r.cache_hits;
  }
  EXPECT_GT(iterations, 0u);
  EXPECT_GT(stitched_runs, 0u) << "the cache path never applied";
  EXPECT_GT(cache_hits, 0u) << "no query ever reused a fragment";
  auto s = cache.stats();
  EXPECT_GT(s.invalidations, 0u) << "live load must invalidate fragments";
}

TEST(FragmentConcurrencyTest, CacheSurvivesConcurrentChurnWithTinyCapacity) {
  // Capacity pressure + live invalidation + many readers: exercises the
  // LRU and the eager drop paths under contention. Correctness is the
  // absence of races/crashes plus bounded residency.
  Database db;
  StreamOptions opt;
  opt.seed = 29;
  opt.num_pallets = 24;
  auto stream = ReadStream::Create(&db, opt);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();

  IngestPipeline pipeline(&db);
  FragmentCacheOptions copt;
  copt.target_region_rows = 32;
  copt.max_regions = 8;
  copt.capacity_bytes = 64 << 10;  // tiny: constant eviction
  FragmentCache cache(copt);
  pipeline.set_fragment_cache(&cache);

  for (uint64_t i = 0; i < kWarmupEpochs; ++i) {
    ASSERT_FALSE((*stream)->exhausted());
    ASSERT_TRUE(
        pipeline.Apply(ToGroup((*stream)->NextBatch(kBatchRows))).ok());
  }
  CleansingRuleEngine engine(&db);
  for (const std::string& def : workload::StandardRuleDefinitions(2)) {
    ASSERT_TRUE(engine.DefineRule(def).ok());
  }
  const std::string sql = "SELECT count(*) FROM caseR";

  IngestDriver::Options dopts;
  dopts.pause_micros = 100;
  dopts.max_batches = 30;
  IngestDriver driver(
      &pipeline,
      [&stream] { return ToGroup((*stream)->NextBatch(kBatchRows)); }, dopts);
  driver.Start();

  std::vector<std::thread> threads;
  std::atomic<uint64_t> runs{0};
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&] {
      bool more = true;
      while (more) {
        // Check before the iteration so each thread runs at least once
        // even if the driver exhausts the stream immediately.
        more = driver.running();
        SnapshotPtr snap = pipeline.snapshot();
        ExecContext ctx;
        ctx.set_snapshot(snap);
        auto stitch = StitchWithFragmentCache(sql, &db, engine, &cache, &ctx);
        ASSERT_TRUE(stitch.ok()) << stitch.status().ToString();
        if (!stitch->used) continue;
        auto res = ExecuteSql(db, stitch->sql, &ctx);
        ASSERT_TRUE(res.ok()) << res.status().ToString();
        runs.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(driver.Join().ok());
  EXPECT_GT(runs.load(), 0u);
  auto s = cache.stats();
  EXPECT_LE(s.resident_bytes, cache.capacity_bytes());
}

}  // namespace
}  // namespace rfid
