// Property sweep for the rewrite engine: across a family of rules, query
// predicate shapes, selectivities, and strategies, the rewritten query
// must return exactly the rows naive whole-table cleansing returns
// (the paper's correctness criterion Q[C1..Cn]).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "common/string_util.h"
#include "common/time_util.h"
#include "plan/planner.h"
#include "rewrite/rewriter.h"

namespace rfid {
namespace {

struct Scenario {
  int rule_set;      // which rule combination (see MakeEngine)
  int predicate;     // 0: <=, 1: >=, 2: between, 3: epc equality, 4: reader
  uint64_t seed;
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  const Scenario& s = info.param;
  static const char* preds[] = {"le", "ge", "between", "epc", "reader"};
  return StrFormat("rules%d_%s_s%llu", s.rule_set, preds[s.predicate],
                   static_cast<unsigned long long>(s.seed));
}

class RewritePropertyTest : public ::testing::TestWithParam<Scenario> {
 protected:
  void BuildData(uint64_t seed) {
    Schema reads;
    reads.AddColumn("epc", DataType::kString);
    reads.AddColumn("rtime", DataType::kTimestamp);
    reads.AddColumn("reader", DataType::kString);
    reads.AddColumn("biz_loc", DataType::kString);
    case_r_ = db_.CreateTable("caseR", reads).value();
    Random rng(seed);
    const char* locs[] = {"locA", "locB", "locC", "loc2", "locD"};
    const char* readers[] = {"r1", "r2", "r3", "readerX"};
    int epcs = 6 + static_cast<int>(rng.Uniform(6));
    for (int e = 0; e < epcs; ++e) {
      int64_t t = static_cast<int64_t>(rng.Uniform(50)) * Minutes(1);
      int n = 2 + static_cast<int>(rng.Uniform(10));
      for (int i = 0; i < n; ++i) {
        ASSERT_TRUE(case_r_
                        ->Append({Value::String("e" + std::to_string(e)),
                                  Value::Timestamp(t),
                                  Value::String(readers[rng.Uniform(4)]),
                                  Value::String(locs[rng.Uniform(5)])})
                        .ok());
        // Mix of short and long gaps so every rule window has hits and
        // misses.
        t += rng.Bernoulli(0.4) ? Minutes(1 + static_cast<int64_t>(rng.Uniform(8)))
                                : Minutes(30 + static_cast<int64_t>(rng.Uniform(300)));
      }
    }
    ASSERT_TRUE(case_r_->BuildIndex("rtime").ok());
    ASSERT_TRUE(case_r_->BuildIndex("epc").ok());
    case_r_->ComputeStats();
  }

  void DefineRuleSet(int rule_set) {
    engine_ = std::make_unique<CleansingRuleEngine>(&db_);
    const char* kReader =
        "DEFINE reader ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) "
        "WHERE B.reader = 'readerX' AND B.rtime - A.rtime < 10 MINUTES "
        "ACTION DELETE A";
    const char* kDup =
        "DEFINE dup ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
        "WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 MINUTES "
        "ACTION DELETE B";
    const char* kModify =
        "DEFINE repl ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
        "WHERE A.biz_loc = 'loc2' AND B.biz_loc = 'locA' AND "
        "B.rtime - A.rtime < 20 MINUTES ACTION MODIFY A.biz_loc = 'loc1'";
    const char* kLeadingSet =
        "DEFINE lead ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (*B, A) "
        "WHERE B.reader = 'readerX' AND A.rtime - B.rtime < 7 MINUTES "
        "ACTION DELETE A";
    const char* kKeep =
        "DEFINE keepfar ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
        "WHERE B.rtime - A.rtime > 1 MINUTES OR B.rtime IS NULL "
        "ACTION KEEP A";
    std::vector<const char*> defs;
    switch (rule_set) {
      case 0: defs = {kReader}; break;
      case 1: defs = {kDup}; break;
      case 2: defs = {kReader, kDup}; break;
      case 3: defs = {kModify, kDup}; break;
      case 4: defs = {kLeadingSet}; break;
      case 5: defs = {kReader, kDup, kModify}; break;
      case 6: defs = {kKeep}; break;
      default: FAIL() << "bad rule set";
    }
    for (const char* d : defs) {
      Status st = engine_->DefineRule(d);
      ASSERT_TRUE(st.ok()) << st.ToString() << "\n" << d;
    }
  }

  std::string BuildQuery(int predicate) {
    int64_t lo = Minutes(60);
    int64_t hi = Minutes(240);
    switch (predicate) {
      case 0:
        return StrFormat("SELECT epc, rtime, biz_loc FROM caseR WHERE rtime "
                         "<= TIMESTAMP %lld",
                         static_cast<long long>(hi));
      case 1:
        return StrFormat("SELECT epc, rtime, biz_loc FROM caseR WHERE rtime "
                         ">= TIMESTAMP %lld",
                         static_cast<long long>(lo));
      case 2:
        return StrFormat(
            "SELECT epc, rtime, biz_loc FROM caseR WHERE rtime >= TIMESTAMP "
            "%lld AND rtime <= TIMESTAMP %lld",
            static_cast<long long>(lo), static_cast<long long>(hi));
      case 3:
        return "SELECT epc, rtime, biz_loc FROM caseR WHERE epc = 'e3'";
      case 4:
        return StrFormat(
            "SELECT epc, rtime FROM caseR WHERE reader = 'r1' AND rtime <= "
            "TIMESTAMP %lld",
            static_cast<long long>(hi));
      default:
        return "";
    }
  }

  std::vector<std::string> RunCanonical(const std::string& sql) {
    auto res = ExecuteSql(db_, sql);
    EXPECT_TRUE(res.ok()) << sql << "\n" << res.status().ToString();
    std::vector<std::string> out;
    if (!res.ok()) return out;
    for (const Row& r : res->rows) {
      std::string s;
      for (const Value& v : r) s += v.ToString() + "|";
      out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  Database db_;
  Table* case_r_ = nullptr;
  std::unique_ptr<CleansingRuleEngine> engine_;
};

TEST_P(RewritePropertyTest, AllStrategiesMatchNaive) {
  const Scenario& s = GetParam();
  BuildData(s.seed);
  DefineRuleSet(s.rule_set);
  QueryRewriter rewriter(&db_, engine_.get());
  std::string query = BuildQuery(s.predicate);

  RewriteOptions naive_opts;
  naive_opts.strategy = RewriteStrategy::kNaive;
  auto naive = rewriter.Rewrite(query, naive_opts);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  std::vector<std::string> truth = RunCanonical(naive->sql);

  for (RewriteStrategy strategy :
       {RewriteStrategy::kExpanded, RewriteStrategy::kJoinBack,
        RewriteStrategy::kAuto}) {
    RewriteOptions opts;
    opts.strategy = strategy;
    auto info = rewriter.Rewrite(query, opts);
    if (!info.ok()) {
      // Expanded may be infeasible; anything else must succeed.
      ASSERT_EQ(strategy, RewriteStrategy::kExpanded)
          << info.status().ToString();
      ASSERT_EQ(info.status().code(), StatusCode::kRewriteInfeasible);
      continue;
    }
    EXPECT_EQ(truth, RunCanonical(info->sql))
        << RewriteStrategyName(strategy) << " diverged\nquery: " << query
        << "\nrewritten: " << info->sql;
  }

  // The aggressive pushdown extension must also stay correct.
  RewriteOptions aggressive;
  aggressive.strategy = RewriteStrategy::kAuto;
  aggressive.aggressive_join_pushdown = true;
  auto info = rewriter.Rewrite(query, aggressive);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(truth, RunCanonical(info->sql)) << "aggressive pushdown diverged";
}

std::vector<Scenario> MakeScenarios() {
  std::vector<Scenario> out;
  for (int rule_set = 0; rule_set <= 6; ++rule_set) {
    for (int predicate = 0; predicate <= 4; ++predicate) {
      for (uint64_t seed : {11ull, 23ull}) {
        out.push_back({rule_set, predicate, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RewritePropertyTest,
                         ::testing::ValuesIn(MakeScenarios()), ScenarioName);

}  // namespace
}  // namespace rfid
