// Focused tests for the SQL-TS -> SQL/OLAP rule compiler: generated
// template shapes, frame-bound folding, action encodings, and the
// compiler's error surface.
#include <gtest/gtest.h>

#include "cleansing/rule_compiler.h"
#include "cleansing/rule_parser.h"
#include "common/time_util.h"

namespace rfid {
namespace {

std::vector<Column> ReadsColumns() {
  return {{"epc", DataType::kString},
          {"rtime", DataType::kTimestamp},
          {"reader", DataType::kString},
          {"biz_loc", DataType::kString}};
}

Result<CompiledRule> Compile(const std::string& text) {
  auto rule = ParseRule(text);
  if (!rule.ok()) return rule.status();
  return CompileRule(*rule, ReadsColumns(), "__r0");
}

TEST(RuleCompilerTest, DuplicateRuleTemplate) {
  auto compiled = Compile(
      "DEFINE dup ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 MINUTES "
      "ACTION DELETE B");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ASSERT_EQ(compiled->stages.size(), 2u);
  const std::string& stage1 = compiled->stages[0].body_sql;
  // Singleton context A at offset -1: one scalar aggregate per column.
  EXPECT_NE(stage1.find("ROWS BETWEEN 1 PRECEDING AND 1 PRECEDING"),
            std::string::npos)
      << stage1;
  EXPECT_NE(stage1.find("__a_biz_loc"), std::string::npos);
  EXPECT_NE(stage1.find("__a_rtime"), std::string::npos);
  EXPECT_NE(stage1.find(kInputPlaceholder), std::string::npos);
  // DELETE keeps rows whose condition is false or unknown.
  const std::string& stage2 = compiled->stages[1].body_sql;
  EXPECT_NE(stage2.find("WHERE NOT ("), std::string::npos) << stage2;
  EXPECT_NE(stage2.find(") IS NULL"), std::string::npos) << stage2;
  // Output schema unchanged by DELETE.
  EXPECT_EQ(compiled->output_columns.size(), 4u);
}

TEST(RuleCompilerTest, SetReferenceFrameFromTimeBound) {
  auto compiled = Compile(
      "DEFINE reader ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) "
      "WHERE B.reader = 'readerX' AND B.rtime - A.rtime < 10 MINUTES "
      "ACTION DELETE A");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const std::string& stage1 = compiled->stages[0].body_sql;
  // Strict < 10min folds to an inclusive bound one microsecond short.
  EXPECT_NE(stage1.find("RANGE BETWEEN 1 MICROSECONDS FOLLOWING AND 599999999 "
                        "MICROSECONDS FOLLOWING"),
            std::string::npos)
      << stage1;
  EXPECT_NE(stage1.find("CASE WHEN reader = 'readerX' THEN 1 ELSE 0 END"),
            std::string::npos)
      << stage1;
}

TEST(RuleCompilerTest, SetReferenceAtPatternStart) {
  // Leading set: all rows before the target within 5 minutes.
  auto compiled = Compile(
      "DEFINE lead ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (*B, A) "
      "WHERE B.reader = 'readerX' AND A.rtime - B.rtime < 5 MINUTES "
      "ACTION DELETE A");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const std::string& stage1 = compiled->stages[0].body_sql;
  EXPECT_NE(stage1.find("RANGE BETWEEN 299999999 MICROSECONDS PRECEDING AND 1 "
                        "MICROSECONDS PRECEDING"),
            std::string::npos)
      << stage1;
}

TEST(RuleCompilerTest, SetReferenceUnboundedWithoutTimeConjunct) {
  auto compiled = Compile(
      "DEFINE k ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) "
      "WHERE B.reader = 'readerX' ACTION DELETE A");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_NE(compiled->stages[0].body_sql.find(
                "RANGE BETWEEN 1 MICROSECONDS FOLLOWING AND UNBOUNDED FOLLOWING"),
            std::string::npos)
      << compiled->stages[0].body_sql;
}

TEST(RuleCompilerTest, TwoSidedTimeBoundsOnSet) {
  auto compiled = Compile(
      "DEFINE k ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) "
      "WHERE B.reader = 'readerX' AND B.rtime - A.rtime < 10 MINUTES AND "
      "B.rtime - A.rtime > 2 MINUTES ACTION DELETE A");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const std::string& stage1 = compiled->stages[0].body_sql;
  EXPECT_NE(stage1.find("RANGE BETWEEN 120000001 MICROSECONDS FOLLOWING AND "
                        "599999999 MICROSECONDS FOLLOWING"),
            std::string::npos)
      << stage1;
}

TEST(RuleCompilerTest, KeepActionFiltersOnTrue) {
  auto compiled = Compile(
      "DEFINE k ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE A.biz_loc <> B.biz_loc ACTION KEEP B");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const std::string& stage2 = compiled->stages[1].body_sql;
  EXPECT_NE(stage2.find("WHERE __a_biz_loc <> biz_loc"), std::string::npos)
      << stage2;
  EXPECT_EQ(stage2.find("IS NULL"), std::string::npos) << stage2;
}

TEST(RuleCompilerTest, ModifyExistingColumnUsesCase) {
  auto compiled = Compile(
      "DEFINE m ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE B.biz_loc = 'locA' ACTION MODIFY A.biz_loc = 'loc1'");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const std::string& stage2 = compiled->stages[1].body_sql;
  EXPECT_NE(stage2.find("THEN 'loc1' ELSE biz_loc END AS biz_loc"),
            std::string::npos)
      << stage2;
  EXPECT_EQ(compiled->output_columns.size(), 4u);
}

TEST(RuleCompilerTest, ModifyNewColumnDefaultsToZero) {
  auto compiled = Compile(
      "DEFINE m ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE B.biz_loc = 'locA' ACTION MODIFY A.flag = 1");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const std::string& stage2 = compiled->stages[1].body_sql;
  EXPECT_NE(stage2.find("THEN 1 ELSE 0 END AS flag"), std::string::npos)
      << stage2;
  ASSERT_EQ(compiled->output_columns.size(), 5u);
  EXPECT_EQ(compiled->output_columns.back().name, "flag");
}

TEST(RuleCompilerTest, ModifyMultipleAssignments) {
  auto compiled = Compile(
      "DEFINE m ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE B.biz_loc = 'locA' "
      "ACTION MODIFY A.biz_loc = 'loc1', A.reader = 'fixed'");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const std::string& stage2 = compiled->stages[1].body_sql;
  EXPECT_NE(stage2.find("AS biz_loc"), std::string::npos);
  EXPECT_NE(stage2.find("AS reader"), std::string::npos);
}

TEST(RuleCompilerTest, ModifyValueMayReferenceTargetColumns) {
  auto compiled = Compile(
      "DEFINE m ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE B.biz_loc = 'locA' ACTION MODIFY A.rtime = A.rtime + 1 MINUTES");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_NE(compiled->stages[1].body_sql.find("THEN rtime + 1 MINUTES"),
            std::string::npos)
      << compiled->stages[1].body_sql;
}

TEST(RuleCompilerTest, RejectsComparisonMixingSetAndTarget) {
  // A single comparison between a set column and a target column (other
  // than sequence-key bounds) is outside the supported fragment.
  auto compiled = Compile(
      "DEFINE bad ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) "
      "WHERE B.biz_loc = A.biz_loc ACTION DELETE A");
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kUnimplemented);
}

TEST(RuleCompilerTest, RejectsUnknownColumns) {
  auto compiled = Compile(
      "DEFINE bad ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE A.bogus = B.bogus ACTION DELETE B");
  ASSERT_FALSE(compiled.ok());
}

TEST(RuleCompilerTest, RejectsMissingKeys) {
  auto rule = ParseRule(
      "DEFINE r ON caseR CLUSTER BY nope SEQUENCE BY rtime AS (A, B) "
      "WHERE A.rtime < B.rtime ACTION DELETE B");
  ASSERT_TRUE(rule.ok());
  auto compiled = CompileRule(*rule, ReadsColumns(), "__r0");
  ASSERT_FALSE(compiled.ok());
}

TEST(RuleCompilerTest, ThreeSingletonContexts) {
  // (W, X, A, Y): contexts at offsets -2, -1, +1 from target A.
  auto compiled = Compile(
      "DEFINE multi ON caseR CLUSTER BY epc SEQUENCE BY rtime "
      "AS (W, X, A, Y) "
      "WHERE W.biz_loc = A.biz_loc AND X.biz_loc <> A.biz_loc AND "
      "Y.biz_loc = A.biz_loc ACTION DELETE A");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const std::string& stage1 = compiled->stages[0].body_sql;
  EXPECT_NE(stage1.find("ROWS BETWEEN 2 PRECEDING AND 2 PRECEDING"),
            std::string::npos);
  EXPECT_NE(stage1.find("ROWS BETWEEN 1 PRECEDING AND 1 PRECEDING"),
            std::string::npos);
  EXPECT_NE(stage1.find("ROWS BETWEEN 1 FOLLOWING AND 1 FOLLOWING"),
            std::string::npos);
}

TEST(RuleCompilerTest, SharedColumnAggregateDeduplicated) {
  // A.rtime referenced twice must produce a single scalar aggregate.
  auto compiled = Compile(
      "DEFINE d ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) "
      "WHERE B.rtime - A.rtime < 5 MINUTES AND B.rtime - A.rtime > 1 MINUTES "
      "ACTION DELETE B");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const std::string& stage1 = compiled->stages[0].body_sql;
  size_t first = stage1.find("AS __a_rtime");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(stage1.find("AS __a_rtime", first + 1), std::string::npos) << stage1;
}

}  // namespace
}  // namespace rfid
