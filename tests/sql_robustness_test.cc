// Robustness properties of the SQL front end:
//  - random token soup must never crash the parser (errors are Status,
//    never exceptions or UB);
//  - randomly generated expressions must round-trip through render+parse
//    structurally unchanged (precedence/parenthesization correctness);
//  - rendered statements are a fixed point of parse ∘ render.
#include <gtest/gtest.h>

#include "common/random.h"
#include "common/time_util.h"
#include "sql/parser.h"
#include "sql/render.h"

namespace rfid {
namespace {

// --- fuzz: token soup ---

class ParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  Random rng(static_cast<uint64_t>(GetParam()));
  static const char* kPieces[] = {
      "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",     "ORDER",  "LIMIT",
      "WITH",   "AS",    "UNION",  "ALL",    "AND",    "OR",     "NOT",
      "IN",     "CASE",  "WHEN",   "THEN",   "ELSE",   "END",    "OVER",
      "ROWS",   "RANGE", "BETWEEN", "(",     ")",      ",",      "*",
      "caseR",  "epc",   "rtime",  "42",     "4.5",    "'x'",    "=",
      "<",      ">=",    "<>",     "+",      "-",      ".",      "MINUTES",
      "TIMESTAMP", "PRECEDING", "FOLLOWING", "PARTITION", "COUNT", "MAX",
  };
  for (int round = 0; round < 200; ++round) {
    std::string sql;
    int len = 1 + static_cast<int>(rng.Uniform(25));
    for (int i = 0; i < len; ++i) {
      sql += kPieces[rng.Uniform(std::size(kPieces))];
      sql += ' ';
    }
    // Must return, never throw or crash; ok or error both fine.
    auto result = ParseSql(sql);
    if (result.ok()) {
      // Whatever parsed must render and re-parse.
      std::string rendered = StatementToSql(*result.value());
      auto reparsed = ParseSql(rendered);
      EXPECT_TRUE(reparsed.ok()) << sql << "\n-> " << rendered;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(1, 6));

// --- fuzz: corpus mutation and raw byte soup ---

const char* const kFuzzCorpus[] = {
    "SELECT * FROM caseR",
    "SELECT epc, rtime FROM caseR WHERE biz_loc = 'locA' ORDER BY rtime",
    "WITH v AS (SELECT * FROM caseR) SELECT count(*) FROM v GROUP BY epc "
    "HAVING count(*) > 2 LIMIT 3",
    "SELECT max(rtime) OVER (PARTITION BY epc ORDER BY rtime ASC ROWS "
    "BETWEEN 2 PRECEDING AND CURRENT ROW) FROM caseR",
    "SELECT a FROM t WHERE a IN (1, 2, 3) OR a IN (SELECT a FROM u)",
    "SELECT a FROM t UNION ALL SELECT b FROM u",
};

// Applies one random mutation: byte flip, deletion, duplication, splice
// from another corpus entry, or truncation.
std::string Mutate(std::string s, Random& rng) {
  if (s.empty()) return s;
  switch (rng.Uniform(5)) {
    case 0:  // flip a byte to anything, including non-ASCII and NUL
      s[rng.Uniform(s.size())] = static_cast<char>(rng.Uniform(256));
      break;
    case 1:  // delete a byte
      s.erase(rng.Uniform(s.size()), 1);
      break;
    case 2: {  // duplicate a span
      size_t at = rng.Uniform(s.size());
      size_t len = 1 + rng.Uniform(8);
      s.insert(at, s.substr(at, len));
      break;
    }
    case 3: {  // splice a fragment of another corpus statement
      const char* other = kFuzzCorpus[rng.Uniform(std::size(kFuzzCorpus))];
      std::string frag(other);
      size_t start = rng.Uniform(frag.size());
      s.insert(rng.Uniform(s.size()), frag.substr(start, 1 + rng.Uniform(12)));
      break;
    }
    default:  // truncate
      s.resize(rng.Uniform(s.size()) + 1);
      break;
  }
  return s;
}

class ParserMutationFuzzTest : public ::testing::TestWithParam<int> {};

// Mutated real statements and raw random bytes must never crash the
// parser, and every rejection must be a front-end error code — fuzz
// input must not surface as kInternal or any engine-side code.
TEST_P(ParserMutationFuzzTest, MutatedCorpusOnlyYieldsFrontEndErrors) {
  Random rng(static_cast<uint64_t>(GetParam()) * 7919);
  for (int round = 0; round < 400; ++round) {
    std::string sql = kFuzzCorpus[rng.Uniform(std::size(kFuzzCorpus))];
    int mutations = 1 + static_cast<int>(rng.Uniform(6));
    for (int m = 0; m < mutations; ++m) sql = Mutate(std::move(sql), rng);
    auto result = ParseSql(sql);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().code() == StatusCode::kParseError ||
                  result.status().code() == StatusCode::kBindError)
          << result.status().ToString() << "\ninput: " << sql;
    }
  }
}

TEST_P(ParserMutationFuzzTest, RandomBytesOnlyYieldFrontEndErrors) {
  Random rng(static_cast<uint64_t>(GetParam()) * 104729);
  for (int round = 0; round < 400; ++round) {
    std::string sql;
    size_t len = rng.Uniform(64);
    for (size_t i = 0; i < len; ++i) {
      sql += static_cast<char>(rng.Uniform(256));
    }
    auto result = ParseSql(sql);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().code() == StatusCode::kParseError ||
                  result.status().code() == StatusCode::kBindError)
          << result.status().ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserMutationFuzzTest, ::testing::Range(1, 9));

// --- property: expression round trip ---

ExprPtr RandomExpr(Random& rng, int depth) {
  if (depth <= 0 || rng.Bernoulli(0.3)) {
    switch (rng.Uniform(4)) {
      case 0:
        return MakeColumnRef("", "c" + std::to_string(rng.Uniform(4)));
      case 1:
        return MakeColumnRef("t" + std::to_string(rng.Uniform(2)),
                             "c" + std::to_string(rng.Uniform(4)));
      case 2:
        return MakeLiteral(Value::Int64(static_cast<int64_t>(rng.Uniform(100))));
      default:
        return MakeLiteral(Value::String("s" + std::to_string(rng.Uniform(5))));
    }
  }
  switch (rng.Uniform(7)) {
    case 0:
      return MakeBinary(BinaryOp::kAnd, RandomExpr(rng, depth - 1),
                        RandomExpr(rng, depth - 1));
    case 1:
      return MakeBinary(BinaryOp::kOr, RandomExpr(rng, depth - 1),
                        RandomExpr(rng, depth - 1));
    case 2: {
      static const BinaryOp kCmps[] = {BinaryOp::kEq, BinaryOp::kNe,
                                       BinaryOp::kLt, BinaryOp::kLe,
                                       BinaryOp::kGt, BinaryOp::kGe};
      return MakeBinary(kCmps[rng.Uniform(6)], RandomExpr(rng, depth - 1),
                        RandomExpr(rng, depth - 1));
    }
    case 3: {
      static const BinaryOp kArith[] = {BinaryOp::kAdd, BinaryOp::kSub,
                                        BinaryOp::kMul, BinaryOp::kDiv};
      return MakeBinary(kArith[rng.Uniform(4)], RandomExpr(rng, depth - 1),
                        RandomExpr(rng, depth - 1));
    }
    case 4:
      return MakeNot(RandomExpr(rng, depth - 1));
    case 5:
      return MakeIsNull(RandomExpr(rng, depth - 1), rng.Bernoulli(0.5));
    default:
      return MakeCase({RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1),
                       RandomExpr(rng, depth - 1)},
                      /*has_else=*/true);
  }
}

class ExprRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(ExprRoundTripTest, RenderedExpressionReparsesStructurallyEqual) {
  Random rng(static_cast<uint64_t>(GetParam()) * 977);
  for (int i = 0; i < 300; ++i) {
    ExprPtr e = RandomExpr(rng, 4);
    std::string sql = ExprToSql(e);
    auto reparsed = ParseExpression(sql);
    ASSERT_TRUE(reparsed.ok()) << sql << ": " << reparsed.status().ToString();
    EXPECT_TRUE(ExprEquals(e, reparsed.value()))
        << "original: " << sql
        << "\nreparsed: " << ExprToSql(reparsed.value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprRoundTripTest, ::testing::Range(1, 6));

// --- fixed point on a realistic corpus ---

TEST(RenderFixedPointTest, CorpusStatements) {
  const char* corpus[] = {
      "SELECT * FROM caseR",
      "SELECT a, b AS bee FROM t WHERE a < 1 AND b IS NOT NULL",
      "WITH v AS (SELECT * FROM t) SELECT count(*) FROM v GROUP BY a "
      "HAVING count(*) > 2 ORDER BY a LIMIT 3",
      "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
      "SELECT max(a) OVER (PARTITION BY b ORDER BY c ASC ROWS BETWEEN 2 "
      "PRECEDING AND CURRENT ROW) FROM t",
      "SELECT sum(x) OVER (PARTITION BY p ORDER BY ts ASC RANGE BETWEEN 5 "
      "MINUTES PRECEDING AND UNBOUNDED FOLLOWING) FROM t",
      "SELECT a FROM t WHERE a IN (1, 2, 3) OR a IN (SELECT a FROM u WHERE "
      "b = 'z')",
      "SELECT a FROM t UNION ALL SELECT b FROM u",
  };
  for (const char* q : corpus) {
    auto p1 = ParseSql(q);
    ASSERT_TRUE(p1.ok()) << q << ": " << p1.status().ToString();
    std::string r1 = StatementToSql(*p1.value());
    auto p2 = ParseSql(r1);
    ASSERT_TRUE(p2.ok()) << r1;
    EXPECT_EQ(r1, StatementToSql(*p2.value())) << q;
  }
}

}  // namespace
}  // namespace rfid
