#!/usr/bin/env bash
# Concurrency-primitive lint: src/ must use the annotated wrappers in
# src/common/sync.h (Mutex / SharedMutex / CondVar / MutexLock /
# ReaderLock / WriterLock) — never the raw standard primitives. The
# wrappers are what give us Clang Thread Safety Analysis coverage and
# lock-rank deadlock checking; a raw std::mutex is invisible to both.
#
# Exits non-zero listing every offending line. sync.h itself is the one
# allowed home of the raw types.
set -u
cd "$(dirname "$0")/.."

PATTERN='std::mutex|std::shared_mutex|std::condition_variable|std::recursive_mutex|std::timed_mutex|std::lock_guard|std::unique_lock|std::shared_lock|std::scoped_lock'

findings=$(grep -rnE "$PATTERN" src/ --include='*.h' --include='*.cc' \
  | grep -v '^src/common/sync\.h:' || true)

if [ -n "$findings" ]; then
  echo "lint_sync: raw synchronization primitives outside src/common/sync.h:"
  echo "$findings"
  echo
  echo "Use the annotated wrappers from common/sync.h instead (Mutex,"
  echo "SharedMutex, CondVar, MutexLock, ReaderLock, WriterLock) and"
  echo "register a rank in common/lock_order.h. See DESIGN.md §15."
  exit 1
fi

echo "lint_sync: OK (no raw primitives outside common/sync.h)"
