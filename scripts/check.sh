#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, re-run the
# guardrail/fault-injection/vectorized/WAL/fragment-cache suites under
# ASan+UBSan and the ingest/parallel/WAL-replay/server/fragment-cache
# concurrency suites under TSan
# (batching stays ON in both sanitizer passes), smoke every example plus
# a live server round (concurrent remote shells, fragment-cache hits
# over the wire, SIGTERM mid-query,
# WAL recovery of the fed rows), run a
# vectorized-vs-interpreted fingerprint sweep over the naive/expanded/
# join-back pipelines, run a randomized crash-recovery loop (N seeds of
# random fault firing across WAL/checkpoint I/O), and run the benchmark
# harnesses, which drop their BENCH_<harness>.json results at the repo
# root (RFID_BENCH_PALLETS scales the data; default 40).
#
# Usage: check.sh [--quick]
#   --quick   build + tests + fingerprint sweep + benchmarks only (skips
#             the sanitizer rebuilds); still refreshes BENCH_*.json.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
  [ "$arg" = "--quick" ] && QUICK=1
done

# Every run below executes with the static verification layer on (hard
# mode): the plan invariant checker fires after each planner phase, the
# bytecode verifier gates every compiled expression program, and the
# rewriter holds every candidate to the original projection schema.
export RFID_VERIFY_PLANS=1

# -Werror promotes the -Wall/-Wextra/-Wconversion set to errors; the
# main build compiles every target, so it is the warning gate for the
# whole tree. Compile commands are exported for the clang-tidy pass.
cmake -B build -G Ninja -DRFID_WERROR=ON -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build build
ctest --test-dir build --output-on-failure

# Concurrency-primitive lint: src/ must go through the annotated
# wrappers in common/sync.h (the carriers of thread-safety annotations
# and lock ranks); any raw std::mutex/lock_guard fails the script.
./scripts/lint_sync.sh

# Clang Thread Safety Analysis: recompile the tree under clang with
# -Wthread-safety promoted to an error, proving every GUARDED_BY /
# REQUIRES contract in src/ holds at compile time. Skipped with a notice
# when no clang++ is installed (the annotations are no-ops under gcc);
# the lint gate above still guarantees new code lands on the annotated
# wrappers, so the analysis is complete whenever it does run.
if command -v clang++ > /dev/null 2>&1; then
  cmake -B build-tsa -G Ninja -DCMAKE_CXX_COMPILER=clang++ \
    -DRFID_WERROR=ON -DRFID_THREAD_SAFETY=ON \
    -DCMAKE_CXX_FLAGS="-Werror=thread-safety"
  cmake --build build-tsa
else
  echo "check.sh: clang++ not found; skipping the thread-safety analysis pass"
fi

# Static lint: clang-tidy over the library sources (config in
# .clang-tidy). Skipped with a notice on toolchains without clang-tidy;
# the -Werror gate above still enforces the compiler warning set.
if command -v clang-tidy > /dev/null 2>&1; then
  if command -v run-clang-tidy > /dev/null 2>&1; then
    run-clang-tidy -p build -quiet "$(pwd)/src/.*"
  else
    find src -name '*.cc' -print0 | xargs -0 -n 8 clang-tidy -p build --quiet
  fi
else
  echo "check.sh: clang-tidy not found; skipping the lint pass"
fi

# Vectorized-vs-interpreted fingerprint sweep: batch plans must be
# bit-identical to the row interpreter across all three cleansing rewrite
# strategies, at several batch sizes, serial and parallel.
./build/tests/vectorized_exec_test \
  --gtest_filter='VectorizedExecTest.AllRewriteStrategiesBitIdentical:VectorizedExecTest.ComposesWithMorselParallelism'

# Columnar encode/decode fuzz smoke: randomized segments across every
# column type (nulls, NaN, -0.0, empty/distinct strings) must round-trip
# bit-identically, and encoded-predicate evaluation must agree with the
# interpreter for all six comparison operators at every SIMD level.
./build/tests/columnar_test \
  --gtest_filter='ColumnarTest.RoundTripRandomized:ColumnarTest.RoundTripAdversarialProfiles:ColumnarTest.SerializationRoundTripAndCorruptInput:ColumnarTest.EncodedPredicatesMatchInterpreterAllOps'

# Crash-recovery loop: several randomized crash-point schedules on top
# of the exhaustive every-step sweep that already runs in ctest. Each
# seed drives SeededRandom fault firing across all WAL append /
# checkpoint / manifest-swap I/O steps; recovery must always land on a
# committed epoch boundary with bit-identical query results.
for seed in 1 2 3 4 5; do
  RFID_CRASH_SEED="$seed" ./build/tests/wal_recovery_test \
    --gtest_filter='CrashSweepTest.RandomizedCrashPoints'
done

if [ "$QUICK" -eq 0 ]; then
  # Sanitizer pass: the fault-injection sweeps fail at every injection
  # point; ASan+UBSan turns any leak or UB on those unwind paths into a
  # hard failure. Batching is ON by default, so the batch pipelines'
  # unwind paths and the bytecode kernels are swept too.
  cmake -B build-asan -G Ninja -DRFID_SANITIZE=ON
  cmake --build build-asan --target fault_injection_test guardrails_test \
    exec_test common_test ingest_fault_test expr_golden_test \
    vectorized_exec_test verify_test wal_test wal_recovery_test \
    fragment_cache_test server_test columnar_test sync_test
  ./build-asan/tests/sync_test
  ./build-asan/tests/verify_test
  ./build-asan/tests/columnar_test
  ./build-asan/tests/fault_injection_test
  ./build-asan/tests/guardrails_test
  ./build-asan/tests/exec_test
  ./build-asan/tests/common_test
  ./build-asan/tests/ingest_fault_test
  ./build-asan/tests/expr_golden_test
  ./build-asan/tests/vectorized_exec_test
  ./build-asan/tests/wal_test
  ./build-asan/tests/wal_recovery_test
  ./build-asan/tests/fragment_cache_test
  ./build-asan/tests/server_test

  # UBSan-alone pass (-fno-sanitize-recover=all, no ASan interposition):
  # any undefined behavior in the planner, rewriter, bytecode kernels, or
  # the verifiers themselves — including the hand-corrupted plans and the
  # bytecode mutation sweep of verify_test, which feed the verifiers
  # deliberately hostile inputs — aborts the test.
  cmake -B build-ubsan -G Ninja -DRFID_SANITIZE=undefined
  cmake --build build-ubsan --target verify_test planner_test \
    expr_golden_test rewrite_property_test fault_injection_test \
    columnar_test sync_test
  ./build-ubsan/tests/sync_test
  ./build-ubsan/tests/columnar_test
  ./build-ubsan/tests/verify_test
  ./build-ubsan/tests/planner_test
  ./build-ubsan/tests/expr_golden_test
  ./build-ubsan/tests/rewrite_property_test
  ./build-ubsan/tests/fault_injection_test

  # TSan pass: queries pin epoch snapshots while an IngestDriver publishes
  # new ones, and morsel-driven parallel operators fan work out to pool
  # threads (including while that writer runs); ThreadSanitizer proves the
  # publish/pin protocol and the parallel pipeline's atomics are proper
  # happens-before edges, not benign-looking races. vectorized_exec_test
  # runs batch pipelines under parallel workers (batching ON), and
  # wal_recovery_test runs live snapshot queries against a database
  # that WAL replay is still mutating.
  # The server suites run under TSan too: N client threads against the
  # per-connection threads, admission queue, shared plan cache, and the
  # shutdown drain — every cross-thread edge the server adds.
  # fragment_concurrency_test hammers the shared fragment cache from
  # query threads (Lookup/Insert) while a live IngestDriver invalidates
  # touched regions, proving the watermark protocol race-free.
  # Sanitizer builds also compile with the lock-rank checker active
  # (RFID_SYNC_CHECK=AUTO turns it on when RFID_SANITIZE != OFF), so
  # every suite below doubles as a deadlock-ordering test.
  cmake -B build-tsan -G Ninja -DRFID_SANITIZE=thread
  cmake --build build-tsan --target ingest_concurrency_test ingest_test \
    parallel_exec_test parallel_concurrency_test vectorized_exec_test \
    wal_recovery_test fragment_cache_test fragment_concurrency_test \
    server_test server_concurrency_test columnar_test sync_test
  # sync_test under TSan: the rank checker's thread_local bookkeeping and
  # the CondVar adopt/release bridge must themselves be race-free.
  # (Death tests are skipped under TSan — fork is unsupported there.)
  ./build-tsan/tests/sync_test --gtest_filter='-SyncDeathTest.*'
  # Encoded-segment publication (ingest's EncodeColdSegments) races scan
  # probes and the live-ingest on/off comparison; TSan proves the
  # directory mutex + shared_ptr pinning are real happens-before edges.
  ./build-tsan/tests/columnar_test
  ./build-tsan/tests/ingest_concurrency_test
  ./build-tsan/tests/ingest_test
  ./build-tsan/tests/parallel_exec_test
  ./build-tsan/tests/parallel_concurrency_test
  ./build-tsan/tests/vectorized_exec_test
  ./build-tsan/tests/wal_recovery_test
  ./build-tsan/tests/fragment_cache_test
  ./build-tsan/tests/fragment_concurrency_test
  ./build-tsan/tests/server_test
  ./build-tsan/tests/server_concurrency_test

  ./build/examples/quickstart > /dev/null
  ./build/examples/dwell_analysis 8 0.1 > /dev/null
  ./build/examples/site_audit 8 0.1 dc1 > /dev/null
  ./build/examples/epedigree 6 0.3 > /dev/null
  ./build/examples/multi_policy > /dev/null
  printf '.gen 3 10\nSELECT count(*) FROM caseR;\n.quit\n' | ./build/examples/rfidsql > /dev/null
  printf '.feed 5 100\nSELECT count(*) FROM caseR;\n.quit\n' | ./build/examples/rfidsql > /dev/null
  # Durability round trip: feed with a WAL attached, checkpoint, feed
  # more, then recover into a fresh shell and query the replayed state.
  WALDIR="$(mktemp -d)"
  printf '.wal %s epoch\n.feed 3 100\n.checkpoint\n.feed 2 100\n.quit\n' "$WALDIR" \
    | ./build/examples/rfidsql > /dev/null
  printf '.recover %s\nSELECT count(*) FROM caseR;\n.quit\n' "$WALDIR" \
    | ./build/examples/rfidsql > /dev/null
  rm -rf "$WALDIR"

  # Server smoke: serve, drive two concurrent remote shells (one attaches
  # a WAL and feeds, one defines rules and queries), then SIGTERM the
  # server while a third client is mid-query. The drain must exit 0
  # (final WAL checkpoint flushed) and a fresh embedded shell must
  # recover the fed rows.
  SRVDIR="$(mktemp -d)"
  ./build/examples/rfidsql --serve 127.0.0.1:20061 > "$SRVDIR/server.log" 2>&1 &
  SRVPID=$!
  for _ in $(seq 1 100); do
    grep -q "serving on" "$SRVDIR/server.log" && break
    sleep 0.1
  done
  printf '.wal %s epoch\n.feed 4 200\n.quit\n' "$SRVDIR/wal" \
    | ./build/examples/rfidsql --connect 127.0.0.1:20061 > "$SRVDIR/seed.log"
  printf '.rule DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 MINUTES ACTION DELETE B\nSELECT count(*) FROM caseR;\nSELECT count(*) FROM caseR;\n.cache stats\n.quit\n' \
    | ./build/examples/rfidsql --connect 127.0.0.1:20061 > "$SRVDIR/c1.log" &
  C1=$!
  printf 'SELECT count(*) FROM caseR;\n.quit\n' \
    | ./build/examples/rfidsql --connect 127.0.0.1:20061 > "$SRVDIR/c2.log"
  wait "$C1"
  grep -q "rows)" "$SRVDIR/c1.log"
  grep -q "rows)" "$SRVDIR/c2.log"
  # Fragment-cache smoke: the repeated cleansed query above must have
  # reused a memoized fragment — .cache stats reports non-zero hits.
  grep -Eq 'fragment cache: on, [0-9]+ entries, [1-9][0-9]* hits' "$SRVDIR/c1.log"
  # Kill mid-query: .debug_hold parks an admission ticket server-side so
  # the SIGTERM lands while this client's work is in flight; the client
  # is expected to die with "server shutting down" or a closed socket.
  printf '.debug_hold 5000\n.quit\n' \
    | ./build/examples/rfidsql --connect 127.0.0.1:20061 > /dev/null 2>&1 &
  C3=$!
  sleep 0.5
  kill -TERM "$SRVPID"
  wait "$SRVPID"                     # set -e: non-zero drain fails here
  wait "$C3" || true
  printf '.recover %s\nSELECT count(*) FROM caseR;\n.quit\n' "$SRVDIR/wal" \
    | ./build/examples/rfidsql | grep -q "recovered"
  rm -rf "$SRVDIR"
fi

# DOP-sweep smoke: verifies parallel plans stay bit-identical to serial
# at DOP 1/2/4/8 (full sweep with repetitions is a manual run).
./build/bench/bench_parallel_scaling --quick

# Benchmark harnesses; each writes BENCH_<harness>.json into the repo
# root (we cd'd there above) for PR-over-PR trajectory tracking.
for b in build/bench/bench_*; do
  [ "$(basename "$b")" = bench_parallel_scaling ] && continue
  "$b"
done

# Columnar on/off pairs for the scan-bound harnesses: the off runs land
# in BENCH_<harness>_columnar_off.json so the encoded-kernel speedup is
# a committed, diffable artifact next to the on-path numbers above.
for b in bench_fig7_scan bench_fig7_selectivity bench_fig9_dirty; do
  RFID_COLUMNAR=0 "build/bench/$b"
done
